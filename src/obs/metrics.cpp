#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace rt3 {

MetricLabels::MetricLabels(
    std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& [key, value] : kv) {
    add(key, value);
  }
}

MetricLabels& MetricLabels::add(const std::string& key,
                                const std::string& value) {
  kv_.emplace_back(key, value);
  std::sort(kv_.begin(), kv_.end());
  return *this;
}

MetricLabels& MetricLabels::add(const std::string& key, std::int64_t value) {
  return add(key, std::to_string(value));
}

std::string MetricLabels::suffix() const {
  if (kv_.empty()) {
    return "";
  }
  std::string out = "{";
  for (std::size_t i = 0; i < kv_.size(); ++i) {
    out += (i ? "," : "") + kv_[i].first + "=\"";
    // Prometheus exposition escaping; a no-op for ordinary values, and
    // it keeps `"` / `\` / newline inside a value from corrupting the
    // key (the suffix IS the metric identity).
    for (const char c : kv_[i].second) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    out += "\"";
  }
  return out + "}";
}

Histogram::Histogram(double lo, std::int64_t num_buckets) : lo_(lo) {
  check(lo > 0.0, "Histogram: lo must be positive");
  check(num_buckets >= 1, "Histogram: need at least one bucket");
  buckets_.assign(static_cast<std::size_t>(num_buckets) + 2, 0);
}

void Histogram::observe(double x) {
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++buckets_.front();
    return;
  }
  // Doubling edges: bucket i covers [lo * 2^i, lo * 2^(i+1)).  The loop
  // (vs log2) keeps the edge comparison in plain double arithmetic, so
  // boundary values land deterministically on every platform.
  double edge = lo_;
  for (std::size_t i = 1; i + 1 < buckets_.size(); ++i) {
    if (x < edge * 2.0) {
      ++buckets_[i];
      return;
    }
    edge *= 2.0;
  }
  ++buckets_.back();
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::bucket_lo(std::int64_t i) const {
  check(i >= 0 && static_cast<std::size_t>(i) < buckets_.size(),
        "Histogram: bucket index out of range");
  if (i == 0) {
    return 0.0;
  }
  double edge = lo_;
  for (std::int64_t k = 1; k < i; ++k) {
    edge *= 2.0;
  }
  return edge;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) {
  return counters_[name + labels.suffix()];
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) {
  return gauges_[name + labels.suffix()];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const MetricLabels& labels, double lo,
                                      std::int64_t num_buckets) {
  const std::string key = name + labels.suffix();
  const auto it = histograms_.find(key);
  if (it != histograms_.end()) {
    return it->second;
  }
  return histograms_.emplace(key, Histogram(lo, num_buckets)).first->second;
}

std::int64_t MetricsRegistry::counter_value(
    const std::string& name, const MetricLabels& labels) const {
  const auto it = counters_.find(name + labels.suffix());
  return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t MetricsRegistry::size() const {
  return static_cast<std::int64_t>(counters_.size() + gauges_.size() +
                                   histograms_.size());
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  // Metric names embed label suffixes like {model="1"}, so keys MUST be
  // escaped to stay valid JSON.
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ", ") << "\"" << trace_json_escape(name)
       << "\": " << c.value();
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ", ") << "\"" << trace_json_escape(name)
       << "\": " << trace_json_num(g.value());
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ", ") << "\"" << trace_json_escape(name)
       << "\": {\"count\": " << h.count()
       << ", \"sum\": " << trace_json_num(h.sum()) << ", \"buckets\": [";
    const auto& buckets = h.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      os << (i ? ", " : "") << buckets[i];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

namespace {

/// Sanitizes a metric name to the Prometheus charset [a-zA-Z0-9_:]
/// (dots become underscores; a leading digit gets a '_' prefix).
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Splits a stored registry key into base name and `{...}` label suffix.
void split_key(const std::string& key, std::string* name,
               std::string* labels) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *name = key;
    labels->clear();
  } else {
    *name = key.substr(0, brace);
    *labels = key.substr(brace);
  }
}

/// Merges an `le` label into an existing (possibly empty) label suffix.
std::string with_le(const std::string& labels, const std::string& le) {
  if (labels.empty()) {
    return "{le=\"" + le + "\"}";
  }
  return labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  // Map keys sort a bare name directly before its labeled variants
  // ('{' > every name character we emit), so one pass emits each
  // family's TYPE line exactly once, before its samples.
  std::string family;
  for (const auto& [key, c] : counters_) {
    std::string name, labels;
    split_key(key, &name, &labels);
    const std::string pname = prom_name(name);
    if (pname != family) {
      os << "# TYPE " << pname << " counter\n";
      family = pname;
    }
    os << pname << labels << " " << c.value() << "\n";
  }
  family.clear();
  for (const auto& [key, g] : gauges_) {
    std::string name, labels;
    split_key(key, &name, &labels);
    const std::string pname = prom_name(name);
    if (pname != family) {
      os << "# TYPE " << pname << " gauge\n";
      family = pname;
    }
    os << pname << labels << " " << trace_json_num(g.value()) << "\n";
  }
  family.clear();
  for (const auto& [key, h] : histograms_) {
    std::string name, labels;
    split_key(key, &name, &labels);
    const std::string pname = prom_name(name);
    if (pname != family) {
      os << "# TYPE " << pname << " histogram\n";
      family = pname;
    }
    const auto& buckets = h.buckets();
    std::int64_t cum = 0;
    // Bucket i (underflow = 0 .. last finite = n) has upper edge
    // bucket_lo(i + 1); the overflow bucket folds into +Inf.
    for (std::size_t i = 0; i + 1 < buckets.size(); ++i) {
      cum += buckets[i];
      os << pname << "_bucket"
         << with_le(labels,
                    trace_json_num(h.bucket_lo(
                        static_cast<std::int64_t>(i) + 1)))
         << " " << cum << "\n";
    }
    cum += buckets.back();
    os << pname << "_bucket" << with_le(labels, "+Inf") << " " << cum
       << "\n";
    os << pname << "_sum" << labels << " " << trace_json_num(h.sum())
       << "\n";
    os << pname << "_count" << labels << " " << h.count() << "\n";
  }
  return os.str();
}

}  // namespace rt3
