#include "serve/session.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "pruning/pattern_prune.hpp"

namespace rt3 {

const std::vector<std::int64_t>& paper_serve_ladder() {
  static const std::vector<std::int64_t> ladder = {5, 3, 2};  // F -> N -> E
  return ladder;
}

LatencyModel paper_calibrated_latency() {
  LatencyModel latency;
  latency.calibrate(ModelSpec::paper_transformer(), 0.6426, ExecMode::kBlock,
                    1400.0, 114.59);
  return latency;
}

std::vector<double> paper_ladder_sparsities(const LatencyModel& latency,
                                            double timing_constraint_ms) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const ModelSpec spec = ModelSpec::paper_transformer();
  std::vector<double> sparsities;
  for (std::int64_t li : paper_serve_ladder()) {
    const double tuned = latency.sparsity_for_latency(
        spec, ExecMode::kPattern, table.level(li).freq_mhz,
        timing_constraint_ms);
    sparsities.push_back(std::max(0.6426, tuned));
  }
  return sparsities;
}

ReconfigEngine& ServeSession::engine() {
  check(engine_ != nullptr,
        "ServeSession: hardware-only baseline has no ReconfigEngine");
  return *engine_;
}

ServeSession::ServeSession(const ServeSessionConfig& config)
    : rng_(config.seed) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const ModelSpec spec = ModelSpec::paper_transformer();
  const LatencyModel latency = paper_calibrated_latency();
  sparsities_ = paper_ladder_sparsities(latency, config.timing_constraint_ms);

  ServerConfig scfg;
  scfg.battery_capacity_mj = config.battery_capacity_mj;
  scfg.batch = config.batch;
  scfg.software_reconfig = config.software_reconfig;
  scfg.exec_mode =
      config.software_reconfig ? ExecMode::kPattern : ExecMode::kBlock;
  const std::vector<double> served_sparsities =
      config.software_reconfig
          ? sparsities_
          : std::vector<double>(paper_serve_ladder().size(), 0.6426);
  server_ = std::make_unique<Server>(
      scfg, table, Governor::equal_tranches(paper_serve_ladder()), PowerModel(),
      latency, spec, served_sparsities);

  if (!config.software_reconfig) {
    return;  // hardware-only baseline: no engine, no pattern switches
  }

  // Small resident backbone with real masks; the analytic models carry
  // the paper-scale numbers, the engine carries the switch semantics.
  for (int i = 0; i < 2; ++i) {
    owned_layers_.push_back(std::make_unique<Linear>(16, 16, rng_));
    layers_.push_back(owned_layers_.back().get());
  }
  pruner_ = std::make_unique<ModelPruner>(layers_);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner_->apply_bp(bp);
  std::vector<PatternSet> sets;
  for (double s : {0.25, 0.5, 0.75}) {  // denser set at faster level
    sets.push_back(random_pattern_set(4, s, 2, rng_));
  }
  engine_ = std::make_unique<ReconfigEngine>(*pruner_, std::move(sets),
                                             SwitchCostModel(), spec, 100);
  server_->attach_engine(engine_.get());
}

}  // namespace rt3
