#include "obs/attribution.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rt3 {

void IntervalAccount::add(double start, double end) {
  if (end <= start) {
    return;
  }
  check(starts_.empty() || start >= ends_.back(),
        "IntervalAccount: intervals must be appended in time order");
  starts_.push_back(start);
  ends_.push_back(end);
  cum_.push_back(cum_.back() + (end - start));
}

double IntervalAccount::overlap(double a, double b) const {
  if (b <= a || starts_.empty()) {
    return 0.0;
  }
  // First interval ending after a, first interval starting at/after b:
  // everything in [lo, hi) intersects [a, b).
  const auto lo = static_cast<std::size_t>(
      std::upper_bound(ends_.begin(), ends_.end(), a) - ends_.begin());
  const auto hi = static_cast<std::size_t>(
      std::lower_bound(starts_.begin(), starts_.end(), b) - starts_.begin());
  if (lo >= hi) {
    return 0.0;
  }
  double total = cum_[hi] - cum_[lo];
  total -= std::max(0.0, a - starts_[lo]);       // clip head interval at a
  total -= std::max(0.0, ends_[hi - 1] - b);     // clip tail interval at b
  return std::max(total, 0.0);
}

WaitBreakdown attribute_wait(const IntervalAccount& switches,
                             const IntervalAccount& execs, double arrival_ms,
                             double start_ms, double end_ms) {
  WaitBreakdown w;
  w.exec_ms = std::max(0.0, end_ms - start_ms);
  const double wait = std::max(0.0, start_ms - arrival_ms);
  w.switch_stall_ms = switches.overlap(arrival_ms, start_ms);
  w.queue_wait_ms = execs.overlap(arrival_ms, start_ms);
  // Switch and exec intervals never overlap each other (the loop is
  // serialized on one virtual clock), so the remainder is the batching
  // hold; clamp absorbs FP rounding.
  w.batch_wait_ms =
      std::max(0.0, wait - w.switch_stall_ms - w.queue_wait_ms);
  return w;
}

MissClass classify_miss(const WaitBreakdown& breakdown, double arrival_ms,
                        double end_ms, double deadline_ms) {
  if (end_ms <= deadline_ms) {
    return MissClass::kNone;
  }
  if (arrival_ms + breakdown.exec_ms > deadline_ms) {
    return MissClass::kExec;
  }
  if (end_ms - breakdown.switch_stall_ms <= deadline_ms) {
    return MissClass::kSwitch;
  }
  return MissClass::kQueued;
}

const char* miss_class_name(MissClass c) {
  switch (c) {
    case MissClass::kNone:
      return "none";
    case MissClass::kQueued:
      return "queued";
    case MissClass::kSwitch:
      return "switch";
    case MissClass::kExec:
      return "exec";
  }
  return "none";
}

}  // namespace rt3
