#include "nn/layers.hpp"

#include <cmath>

#include "common/check.hpp"

namespace rt3 {

LayerNormLayer::LayerNormLayer(std::int64_t dim)
    : gamma_(Tensor::ones({dim}), /*requires_grad=*/true),
      beta_(Tensor::zeros({dim}), /*requires_grad=*/true) {}

Var LayerNormLayer::forward(const Var& x) const {
  return layer_norm(x, gamma_, beta_);
}

void LayerNormLayer::collect_params(const std::string& prefix,
                                    std::vector<NamedParam>& out) const {
  out.push_back({prefix + "gamma", gamma_});
  out.push_back({prefix + "beta", beta_});
}

PositionalEncoding::PositionalEncoding(std::int64_t max_len, std::int64_t dim)
    : table_({max_len, dim}) {
  for (std::int64_t pos = 0; pos < max_len; ++pos) {
    for (std::int64_t i = 0; i < dim; ++i) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, 2.0 * static_cast<double>(i / 2) /
                                static_cast<double>(dim));
      table_[pos * dim + i] = static_cast<float>(
          (i % 2 == 0) ? std::sin(angle) : std::cos(angle));
    }
  }
}

Var PositionalEncoding::forward(const Var& x) const {
  check(x.shape().size() == 3, "PositionalEncoding: expected [B,T,D]");
  const std::int64_t b = x.shape()[0];
  const std::int64_t t = x.shape()[1];
  const std::int64_t d = x.shape()[2];
  check(t <= table_.size(0), "PositionalEncoding: sequence too long");
  check(d == table_.size(1), "PositionalEncoding: dim mismatch");
  Tensor pos({b, t, d});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t ti = 0; ti < t; ++ti) {
      for (std::int64_t di = 0; di < d; ++di) {
        pos[(bi * t + ti) * d + di] = table_[ti * d + di];
      }
    }
  }
  return add_const(x, pos);
}

MultiHeadAttention::MultiHeadAttention(std::int64_t dim, std::int64_t num_heads,
                                       Rng& rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  check(dim % num_heads == 0, "MultiHeadAttention: dim % heads != 0");
  wq_ = std::make_unique<Linear>(dim, dim, rng);
  wk_ = std::make_unique<Linear>(dim, dim, rng);
  wv_ = std::make_unique<Linear>(dim, dim, rng);
  wo_ = std::make_unique<Linear>(dim, dim, rng);
}

Var MultiHeadAttention::forward(const Var& query, const Var& key,
                                const Var& value, bool causal) const {
  check(query.shape().size() == 3, "MHA: expected [B,T,D]");
  const std::int64_t b = query.shape()[0];
  const std::int64_t tq = query.shape()[1];
  const std::int64_t tk = key.shape()[1];
  check(key.shape()[0] == b && value.shape()[0] == b, "MHA: batch mismatch");
  check(value.shape()[1] == tk, "MHA: key/value length mismatch");
  if (causal) {
    check(tq == tk, "MHA: causal attention needs square scores");
  }

  // Project and split heads: [B,T,D] -> [B*H, T, head_dim].
  const auto split = [&](const Var& x, std::int64_t t) {
    Var h = reshape(x, {b, t, num_heads_, head_dim_});
    h = permute(h, {0, 2, 1, 3});  // [B,H,T,hd]
    return reshape(h, {b * num_heads_, t, head_dim_});
  };
  Var q = split(wq_->forward(query), tq);
  Var k = split(wk_->forward(key), tk);
  Var v = split(wv_->forward(value), tk);

  Var scores = bmm(q, transpose_last2(k));  // [B*H, Tq, Tk]
  scores = scale(scores, 1.0F / std::sqrt(static_cast<float>(head_dim_)));

  if (causal) {
    Tensor mask({b * num_heads_, tq, tk});
    for (std::int64_t bh = 0; bh < b * num_heads_; ++bh) {
      for (std::int64_t i = 0; i < tq; ++i) {
        for (std::int64_t j = i + 1; j < tk; ++j) {
          mask[(bh * tq + i) * tk + j] = -1e9F;
        }
      }
    }
    scores = add_const(scores, mask);
  }

  Var attn = softmax_lastdim(scores);
  Var ctx = bmm(attn, v);  // [B*H, Tq, hd]
  ctx = reshape(ctx, {b, num_heads_, tq, head_dim_});
  ctx = permute(ctx, {0, 2, 1, 3});  // [B,Tq,H,hd]
  ctx = reshape(ctx, {b, tq, dim_});
  return wo_->forward(ctx);
}

void MultiHeadAttention::collect_params(const std::string& prefix,
                                        std::vector<NamedParam>& out) const {
  wq_->collect_params(prefix + "wq.", out);
  wk_->collect_params(prefix + "wk.", out);
  wv_->collect_params(prefix + "wv.", out);
  wo_->collect_params(prefix + "wo.", out);
}

std::vector<Linear*> MultiHeadAttention::prunable() {
  return {wq_.get(), wk_.get(), wv_.get(), wo_.get()};
}

FeedForward::FeedForward(std::int64_t dim, std::int64_t hidden, Rng& rng) {
  fc1_ = std::make_unique<Linear>(dim, hidden, rng);
  fc2_ = std::make_unique<Linear>(hidden, dim, rng);
}

Var FeedForward::forward(const Var& x) const {
  return fc2_->forward(gelu(fc1_->forward(x)));
}

void FeedForward::collect_params(const std::string& prefix,
                                 std::vector<NamedParam>& out) const {
  fc1_->collect_params(prefix + "fc1.", out);
  fc2_->collect_params(prefix + "fc2.", out);
}

std::vector<Linear*> FeedForward::prunable() {
  return {fc1_.get(), fc2_.get()};
}

EncoderLayer::EncoderLayer(std::int64_t dim, std::int64_t num_heads,
                           std::int64_t ffn_hidden, Rng& rng) {
  attn_ = std::make_unique<MultiHeadAttention>(dim, num_heads, rng);
  ffn_ = std::make_unique<FeedForward>(dim, ffn_hidden, rng);
  norm1_ = std::make_unique<LayerNormLayer>(dim);
  norm2_ = std::make_unique<LayerNormLayer>(dim);
}

Var EncoderLayer::forward(const Var& x, bool causal) const {
  Var h = norm1_->forward(x);
  Var attn_out = attn_->forward(h, h, h, causal);
  Var x1 = add(x, attn_out);
  Var h2 = norm2_->forward(x1);
  return add(x1, ffn_->forward(h2));
}

void EncoderLayer::collect_params(const std::string& prefix,
                                  std::vector<NamedParam>& out) const {
  attn_->collect_params(prefix + "attn.", out);
  ffn_->collect_params(prefix + "ffn.", out);
  norm1_->collect_params(prefix + "norm1.", out);
  norm2_->collect_params(prefix + "norm2.", out);
}

std::vector<Linear*> EncoderLayer::prunable() {
  std::vector<Linear*> out = attn_->prunable();
  for (Linear* l : ffn_->prunable()) {
    out.push_back(l);
  }
  return out;
}

DecoderLayer::DecoderLayer(std::int64_t dim, std::int64_t num_heads,
                           std::int64_t ffn_hidden, Rng& rng) {
  self_attn_ = std::make_unique<MultiHeadAttention>(dim, num_heads, rng);
  cross_attn_ = std::make_unique<MultiHeadAttention>(dim, num_heads, rng);
  ffn_ = std::make_unique<FeedForward>(dim, ffn_hidden, rng);
  norm1_ = std::make_unique<LayerNormLayer>(dim);
  norm2_ = std::make_unique<LayerNormLayer>(dim);
  norm3_ = std::make_unique<LayerNormLayer>(dim);
}

Var DecoderLayer::forward(const Var& x, const Var& memory) const {
  Var h1 = norm1_->forward(x);
  Var x1 = add(x, self_attn_->forward(h1, h1, h1, /*causal=*/true));
  Var h2 = norm2_->forward(x1);
  Var x2 = add(x1, cross_attn_->forward(h2, memory, memory, /*causal=*/false));
  Var h3 = norm3_->forward(x2);
  return add(x2, ffn_->forward(h3));
}

void DecoderLayer::collect_params(const std::string& prefix,
                                  std::vector<NamedParam>& out) const {
  self_attn_->collect_params(prefix + "self_attn.", out);
  cross_attn_->collect_params(prefix + "cross_attn.", out);
  ffn_->collect_params(prefix + "ffn.", out);
  norm1_->collect_params(prefix + "norm1.", out);
  norm2_->collect_params(prefix + "norm2.", out);
  norm3_->collect_params(prefix + "norm3.", out);
}

std::vector<Linear*> DecoderLayer::prunable() {
  std::vector<Linear*> out = self_attn_->prunable();
  for (Linear* l : cross_attn_->prunable()) {
    out.push_back(l);
  }
  for (Linear* l : ffn_->prunable()) {
    out.push_back(l);
  }
  return out;
}

}  // namespace rt3
