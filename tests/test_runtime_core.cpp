// Tests for the runtime layer (package serialization, reconfiguration
// engine, discharge simulation) and core utilities (Pareto front), plus an
// end-to-end mini pipeline integration test.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "common/check.hpp"
#include "core/pareto.hpp"
#include "core/pipeline.hpp"
#include "runtime/engine.hpp"
#include "runtime/package.hpp"

namespace rt3 {
namespace {

TEST(Pareto, DominanceDefinition) {
  EXPECT_TRUE(dominates({0.9, 100.0, 0}, {0.8, 90.0, 1}));
  EXPECT_TRUE(dominates({0.9, 100.0, 0}, {0.9, 90.0, 1}));
  EXPECT_FALSE(dominates({0.9, 100.0, 0}, {0.9, 100.0, 1}));  // equal
  EXPECT_FALSE(dominates({0.9, 80.0, 0}, {0.8, 90.0, 1}));    // trade-off
}

TEST(Pareto, FrontMaintenance) {
  ParetoFront front;
  EXPECT_TRUE(front.insert({0.9, 100.0, 0}));
  EXPECT_TRUE(front.insert({0.95, 50.0, 1}));   // trade-off: joins
  EXPECT_FALSE(front.insert({0.8, 90.0, 2}));   // dominated by first
  EXPECT_TRUE(front.insert({0.99, 200.0, 3}));  // dominates everything
  const auto f = front.front();
  ASSERT_EQ(f.size(), 1U);
  EXPECT_EQ(f[0].tag, 3);
  EXPECT_EQ(front.all().size(), 4U);
}

TEST(Pareto, BestAccuracySelection) {
  ParetoFront front;
  front.insert({0.9, 100.0, 0});
  front.insert({0.95, 50.0, 1});
  EXPECT_EQ(front.best_accuracy().tag, 1);
  ParetoFront empty;
  EXPECT_THROW(empty.best_accuracy(), CheckError);
}

TEST(Pareto, FrontSortedByAccuracy) {
  ParetoFront front;
  front.insert({0.95, 50.0, 0});
  front.insert({0.85, 80.0, 1});
  front.insert({0.75, 120.0, 2});
  const auto f = front.front();
  ASSERT_EQ(f.size(), 3U);
  EXPECT_LT(f[0].accuracy, f[1].accuracy);
  EXPECT_LT(f[1].accuracy, f[2].accuracy);
}

TEST(Package, SaveLoadRoundTrip) {
  DeploymentPackage pkg;
  Rng rng(1);
  pkg.param_names = {"a", "b"};
  pkg.params = {Tensor::randn({3, 4}, rng), Tensor::randn({5}, rng)};
  pkg.prunable_names = {"p0"};
  pkg.backbone_masks = {Tensor::ones({3, 4})};
  PatternSet set;
  set.patterns.push_back(Pattern::dense(4));
  set.patterns.push_back(
      Pattern::from_importance(Tensor::rand_uniform({4, 4}, rng, 0, 1), 8));
  pkg.pattern_sets = {set};
  LevelMeta meta;
  meta.level_name = "l6";
  meta.freq_mhz = 1400.0;
  meta.pattern_sparsity = 0.5;
  meta.overall_sparsity = 0.7;
  meta.latency_ms = 93.5;
  meta.accuracy = 0.954;
  pkg.levels = {meta};

  const std::string path = "/tmp/rt3_test_pkg.bin";
  pkg.save(path);
  const DeploymentPackage loaded = DeploymentPackage::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.param_names, pkg.param_names);
  EXPECT_TRUE(loaded.params[0].allclose(pkg.params[0]));
  EXPECT_TRUE(loaded.params[1].allclose(pkg.params[1]));
  EXPECT_TRUE(loaded.backbone_masks[0].allclose(pkg.backbone_masks[0]));
  ASSERT_EQ(loaded.pattern_sets.size(), 1U);
  EXPECT_EQ(loaded.pattern_sets[0].patterns[1].bits(),
            pkg.pattern_sets[0].patterns[1].bits());
  EXPECT_EQ(loaded.levels[0].level_name, "l6");
  EXPECT_DOUBLE_EQ(loaded.levels[0].accuracy, 0.954);
}

TEST(Package, LoadRejectsGarbage) {
  const std::string path = "/tmp/rt3_test_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[] = "definitely not a package";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(DeploymentPackage::load(path), CheckError);
  std::remove(path.c_str());
  EXPECT_THROW(DeploymentPackage::load("/tmp/rt3_does_not_exist.bin"),
               CheckError);
}

TEST(Package, ByteAccounting) {
  DeploymentPackage pkg;
  pkg.param_names = {"w"};
  pkg.params = {Tensor::zeros({10, 10})};
  pkg.prunable_names = {"w"};
  pkg.backbone_masks = {Tensor::ones({10, 10})};
  PatternSet set;
  set.patterns.push_back(Pattern::dense(10));  // 100 bits -> 13 bytes
  pkg.pattern_sets = {set};
  pkg.levels = {LevelMeta{}};
  EXPECT_EQ(pkg.resident_bytes(), 400 + 13);  // weights + packed mask
  EXPECT_EQ(pkg.switch_bytes(0), 13);
  EXPECT_THROW(pkg.switch_bytes(1), CheckError);
}

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture() : rng_(2) {
    for (int i = 0; i < 2; ++i) {
      layers_.push_back(std::make_unique<Linear>(16, 16, rng_));
      raw_.push_back(layers_.back().get());
    }
    pruner_ = std::make_unique<ModelPruner>(raw_);
    BpConfig bp;
    bp.num_blocks = 4;
    bp.prune_fraction = 0.25;
    pruner_->apply_bp(bp);
    sets_.push_back(random_pattern_set(4, 0.25, 2, rng_));
    sets_.push_back(random_pattern_set(4, 0.5, 2, rng_));
    sets_.push_back(random_pattern_set(4, 0.75, 2, rng_));
  }
  Rng rng_;
  std::vector<std::unique_ptr<Linear>> layers_;
  std::vector<Linear*> raw_;
  std::unique_ptr<ModelPruner> pruner_;
  std::vector<PatternSet> sets_;
};

TEST_F(EngineFixture, SwitchAppliesMasksAndReports) {
  ReconfigEngine engine(*pruner_, sets_, SwitchCostModel(),
                        ModelSpec::paper_transformer(), 100);
  const SwitchReport r0 = engine.switch_to(0);
  EXPECT_EQ(r0.to_level, 0);
  EXPECT_GT(r0.modeled_ms, 0.0);
  EXPECT_LT(r0.modeled_ms, 100.0);  // milliseconds, not seconds
  EXPECT_EQ(engine.current_level(), 0);

  const double s0 = pruner_->overall_sparsity();
  engine.switch_to(2);
  EXPECT_GT(pruner_->overall_sparsity(), s0);  // sparser set now active
}

TEST_F(EngineFixture, RepeatSwitchIsNoop) {
  ReconfigEngine engine(*pruner_, sets_, SwitchCostModel(),
                        ModelSpec::paper_transformer(), 100);
  engine.switch_to(1);
  const SwitchReport again = engine.switch_to(1);
  EXPECT_EQ(again.modeled_ms, 0.0);
  EXPECT_EQ(again.wall_ms, 0.0);
}

TEST_F(EngineFixture, SparsityAtIsMonotoneAcrossLevels) {
  ReconfigEngine engine(*pruner_, sets_, SwitchCostModel(),
                        ModelSpec::paper_transformer(), 100);
  const double s0 = engine.sparsity_at(0);
  const double s1 = engine.sparsity_at(1);
  const double s2 = engine.sparsity_at(2);
  EXPECT_LT(s0, s1);
  EXPECT_LT(s1, s2);
}

TEST(Discharge, SoftwareReconfigBeatsHardwareOnly) {
  // Reproduces the Table II ordering inside the simulator itself.
  const VfTable table = VfTable::odroid_xu3_a7();
  const Governor governor = Governor::equal_tranches({5, 3, 2});
  const PowerModel power;
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);

  DischargeConfig cfg;
  cfg.battery_capacity_mj = 2e4;
  cfg.timing_constraint_ms = 115.0;

  // Sub-model sparsities sized to meet T at each level.
  std::vector<double> adaptive;
  for (std::int64_t li : {5, 3, 2}) {
    adaptive.push_back(std::max(
        0.6426, latency.sparsity_for_latency(spec, ExecMode::kPattern,
                                             table.level(li).freq_mhz,
                                             115.0)));
  }

  cfg.software_reconfig = false;
  const DischargeStats hw_only = simulate_discharge(
      cfg, table, governor, power, latency, spec,
      {0.6426, 0.6426, 0.6426}, ExecMode::kBlock);

  cfg.software_reconfig = true;
  const DischargeStats hw_sw = simulate_discharge(
      cfg, table, governor, power, latency, spec, adaptive,
      ExecMode::kPattern);

  EXPECT_GT(hw_sw.total_runs, hw_only.total_runs);
  EXPECT_GT(hw_only.deadline_misses, 0.0);      // N/E modes miss T
  EXPECT_DOUBLE_EQ(hw_sw.deadline_misses, 0.0); // adaptive meets T
  EXPECT_EQ(hw_sw.switches, 2);                 // two downshifts
  // All three levels actually ran.
  for (double runs : hw_sw.runs_per_level) {
    EXPECT_GT(runs, 0.0);
  }
}

TEST(Discharge, RunsScaleWithCapacity) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const Governor governor = Governor::equal_tranches({5});
  const PowerModel power;
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  DischargeConfig cfg;
  cfg.battery_capacity_mj = 1e4;
  const DischargeStats small = simulate_discharge(
      cfg, table, governor, power, latency, spec, {0.6426}, ExecMode::kBlock);
  cfg.battery_capacity_mj = 2e4;
  const DischargeStats big = simulate_discharge(
      cfg, table, governor, power, latency, spec, {0.6426}, ExecMode::kBlock);
  EXPECT_NEAR(big.total_runs / small.total_runs, 2.0, 0.05);
}

// ---------------------------------------------------------------------------
// End-to-end mini pipeline (kept tiny: 2 episodes, short fine-tunes).
// ---------------------------------------------------------------------------

TEST(Pipeline, EndToEndLmRunsAndSatisfiesConstraint) {
  CorpusConfig ccfg;
  ccfg.vocab_size = 32;
  ccfg.num_tokens = 3000;
  ccfg.rule_strength = 0.95;
  const Corpus corpus(ccfg);

  TransformerLmConfig mcfg;
  mcfg.vocab_size = 32;
  mcfg.d_model = 16;
  mcfg.num_heads = 2;
  mcfg.ffn_hidden = 32;
  mcfg.max_seq_len = 16;
  TransformerLm model(mcfg);

  TrainConfig pre;
  pre.steps = 120;
  pre.batch = 8;
  pre.seq_len = 12;
  pre.lr = 8e-3F;
  train_lm(model, corpus, pre);

  Rt3Options options;
  options.timing_constraint_ms = 110.0;
  options.episodes = 2;
  options.bp.num_blocks = 4;
  options.bp.prune_fraction = 0.25;
  options.space.psize = 4;
  options.space.patterns_per_set = 2;
  options.space.num_variants = 2;
  options.episode_train.steps = 10;
  options.episode_train.batch = 4;
  options.episode_train.seq_len = 12;
  options.final_train.steps = 20;
  options.final_train.batch = 4;
  options.final_train.seq_len = 12;
  options.backbone_train.steps = 20;
  options.backbone_train.batch = 4;
  options.backbone_train.seq_len = 12;

  Rt3LmPipeline pipeline(model, corpus, options, ModelSpec::paper_transformer());
  const Rt3Result result = pipeline.run();

  ASSERT_EQ(result.levels.size(), 3U);
  EXPECT_EQ(result.explored.size(), 2U);
  EXPECT_GT(result.backbone_sparsity, 0.2);
  for (const auto& sub : result.levels) {
    EXPECT_LE(sub.latency_ms, options.timing_constraint_ms * 1.001)
        << sub.level_name;
    EXPECT_GT(sub.overall_sparsity, 0.0);
    EXPECT_GT(sub.runs, 0.0);
  }
  // Switch-cost shape: full model reload is orders slower than pattern swap.
  EXPECT_GT(result.model_switch_ms / result.pattern_switch_ms, 100.0);
  EXPECT_GT(result.total_runs, 0.0);

  // Packaging round trip.
  const DeploymentPackage pkg = pipeline.package(result);
  EXPECT_EQ(pkg.pattern_sets.size(), 3U);
  EXPECT_EQ(pkg.levels.size(), 3U);
  const std::string path = "/tmp/rt3_e2e_pkg.bin";
  pkg.save(path);
  const DeploymentPackage loaded = DeploymentPackage::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.param_names.size(), pkg.param_names.size());
}

}  // namespace
}  // namespace rt3
