// Deadline-tagged inference requests, the policy-ordered heap that ranks
// them, and the MPMC queue that carries them from producers (traffic
// sources, RPC front-ends) to the serving loop.
//
// Time in the serving subsystem is VIRTUAL and measured in milliseconds
// from session start: requests carry their arrival and absolute deadline
// timestamps, and the Server advances a simulated clock as batches
// execute.  This keeps every serve session bit-reproducible from a seed
// while the queue and thread pool remain real concurrency primitives.
#pragma once

#include <cstdint>
#include <vector>

#include "common/lockdep.hpp"
#include "common/thread_annotations.hpp"
#include "serve/policy.hpp"

namespace rt3 {

/// One inference request flowing through the serving subsystem.
struct Request {
  std::int64_t id = 0;
  /// Virtual arrival timestamp (ms since session start).
  double arrival_ms = 0.0;
  /// Absolute virtual deadline; a request completing after this counts as
  /// a deadline miss (the paper's timing constraint T, per request).
  double deadline_ms = 0.0;
  /// Priority class, 0 = most urgent; only kEdfPriority looks at it.
  std::int64_t priority = 0;
  /// Target model on a multi-model ServeNode (see serve/node.hpp); the
  /// Router dispatches on this id.  Single-model Servers ignore it.
  std::int64_t model_id = 0;
};

/// The policy's static scheduling key for one request (smaller = sooner);
/// see policy.hpp for the aging-term derivation.
double policy_key(const Request& r, const SchedulerConfig& config);

/// Binary min-heap of requests ordered by (policy key, push sequence).
///
/// Push order is remembered via a sequence number stamped intrusively on
/// each heap entry, which (a) makes kFifo pop in exact push order and
/// (b) makes every tie-break deterministic regardless of heap internals.
class RequestHeap {
 public:
  explicit RequestHeap(SchedulerConfig config = {});

  void push(const Request& r);

  /// Policy-minimal pending request; requires !empty().
  const Request& peek() const;
  Request pop();

  bool empty() const { return entries_.empty(); }
  std::int64_t size() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  void clear();

  /// Earliest arrival among pending requests (+infinity when empty).
  /// O(n) scan: under non-FIFO policies the oldest request is not the
  /// heap head, and pending depths here are tiny relative to batch work.
  double min_arrival_ms() const;

  /// Removes every pending request whose deadline is <= now_ms; returned
  /// in push order (matching the historical deque scan).
  std::vector<Request> extract_expired(double now_ms);

  const SchedulerConfig& config() const { return config_; }

 private:
  struct Entry {
    double key = 0.0;
    std::int64_t seq = 0;
    Request req;
  };
  /// std::*_heap comparator: (key, seq) is a TOTAL order, so the popped
  /// minimum — and therefore the observable pop sequence — is independent
  /// of the heap's internal array layout.
  static bool later(const Entry& a, const Entry& b);

  SchedulerConfig config_;
  std::vector<Entry> entries_;
  std::int64_t next_seq_ = 0;
};

/// Blocking multi-producer/multi-consumer queue of requests.
///
/// Producers push concurrently; consumers pop concurrently.  Pop order is
/// policy-driven (a RequestHeap under the lock): FIFO by default, EDF or
/// EDF-with-priority-classes when constructed with that SchedulerConfig.
/// Note the Server's deterministic session path (serve_queue) re-sorts
/// its drained pops by arrival timestamp and applies the policy inside
/// the Batcher instead, so queue-level ordering matters to DIRECT
/// consumers — front-ends popping requests themselves, dispatchers
/// feeding multiple servers — not to serve_queue().
/// close() wakes everyone: pushes are rejected afterwards, pops drain what
/// is left and then return false.  capacity 0 means unbounded; a bounded
/// queue blocks producers when full (back-pressure).
class RequestQueue {
 public:
  explicit RequestQueue(std::int64_t capacity = 0,
                        SchedulerConfig scheduler = {});

  /// Blocks while a bounded queue is full; returns false iff closed.
  bool push(Request r) RT3_EXCLUDES(mu_);

  /// Blocks until an item arrives or the queue is closed and drained;
  /// returns false only in the latter case.
  bool pop(Request& out) RT3_EXCLUDES(mu_);

  /// Non-blocking pop; false if nothing is immediately available.
  bool try_pop(Request& out) RT3_EXCLUDES(mu_);

  void close() RT3_EXCLUDES(mu_);
  bool closed() const RT3_EXCLUDES(mu_);
  std::int64_t size() const RT3_EXCLUDES(mu_);
  const SchedulerConfig& scheduler() const { return scheduler_; }

 private:
  mutable Mutex mu_{"RequestQueue::mu_"};
  CondVar not_empty_;
  CondVar not_full_;
  /// Immutable after construction; the unguarded copy scheduler() reads
  /// (items_ itself may only be touched under mu_).
  const SchedulerConfig scheduler_;
  RequestHeap items_ RT3_GUARDED_BY(mu_);
  std::int64_t capacity_;
  bool closed_ RT3_GUARDED_BY(mu_) = false;
};

}  // namespace rt3
