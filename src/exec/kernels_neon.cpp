// NEON kernel table (width 4) for aarch64 — the paper's actual mobile
// target class.  vfmaq_f32 is a per-lane fused multiply-add with a single
// rounding, so the table is bitwise equal to the scalar reference
// lane-wise.  aarch64 mandates NEON, so no runtime probe is needed; on
// other architectures the table is absent.
#include "exec/kernels_dispatch.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "exec/kernels_inner.hpp"

namespace rt3 {
namespace {

struct VecNeon {
  static constexpr std::int64_t kWidth = 4;
  using Reg = float32x4_t;
  static Reg load(const float* p) { return vld1q_f32(p); }
  static void store(float* p, Reg r) { vst1q_f32(p, r); }
  static Reg broadcast(float v) { return vdupq_n_f32(v); }
  static Reg fma(Reg a, Reg b, Reg c) { return vfmaq_f32(c, a, b); }
};

}  // namespace

const KernelTable* neon_kernel_table() {
  static const KernelTable table =
      inner::make_kernel_table<VecNeon>("neon");
  return &table;
}

}  // namespace rt3

#else

namespace rt3 {

const KernelTable* neon_kernel_table() { return nullptr; }

}  // namespace rt3

#endif
