#include "pruning/block_prune.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace rt3 {

namespace {

// l2 norms of each column within each row-block: result[b][c].
std::vector<std::vector<double>> block_column_norms(const Tensor& weight,
                                                    std::int64_t num_blocks) {
  check(weight.dim() == 2, "block pruning: need 2-D weight");
  const std::int64_t rows = weight.size(0);
  const std::int64_t cols = weight.size(1);
  check(num_blocks > 0 && rows % num_blocks == 0,
        "block pruning: rows must divide evenly into num_blocks");
  const std::int64_t block_rows = rows / num_blocks;
  std::vector<std::vector<double>> norms(
      static_cast<std::size_t>(num_blocks),
      std::vector<double>(static_cast<std::size_t>(cols), 0.0));
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    for (std::int64_t r = b * block_rows; r < (b + 1) * block_rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        const double v = weight[r * cols + c];
        norms[static_cast<std::size_t>(b)][static_cast<std::size_t>(c)] +=
            v * v;
      }
    }
    for (auto& n : norms[static_cast<std::size_t>(b)]) {
      n = std::sqrt(n);
    }
  }
  return norms;
}

// Marks `mask` columns of block b as zero.
void zero_block_column(Tensor& mask, std::int64_t num_blocks, std::int64_t b,
                       std::int64_t c) {
  const std::int64_t rows = mask.size(0);
  const std::int64_t cols = mask.size(1);
  const std::int64_t block_rows = rows / num_blocks;
  for (std::int64_t r = b * block_rows; r < (b + 1) * block_rows; ++r) {
    mask[r * cols + c] = 0.0F;
  }
}

}  // namespace

std::vector<std::int64_t> bp_pruned_counts(const Tensor& weight,
                                           const BpConfig& config) {
  const auto norms = block_column_norms(weight, config.num_blocks);
  const std::int64_t cols = weight.size(1);
  std::vector<std::int64_t> counts;
  counts.reserve(norms.size());
  for (const auto& block : norms) {
    std::int64_t pruned = 0;
    if (config.mode == BpConfig::Mode::kThreshold) {
      for (double n : block) {
        pruned += (n < config.threshold) ? 1 : 0;
      }
    } else {
      pruned = static_cast<std::int64_t>(
          std::floor(config.prune_fraction * static_cast<double>(cols)));
      pruned = std::clamp<std::int64_t>(pruned, 0, cols);
    }
    counts.push_back(pruned);
  }
  return counts;
}

namespace {

Tensor bp_mask_columns(const Tensor& weight, const BpConfig& config);

}  // namespace

Tensor bp_mask(const Tensor& weight, const BpConfig& config) {
  switch (config.dim) {
    case BpConfig::Dim::kColumns:
      return bp_mask_columns(weight, config);
    case BpConfig::Dim::kRows:
      // Row pruning inside column-wise blocks == column pruning on the
      // transpose.
      return transpose2d(bp_mask_columns(transpose2d(weight), config));
    case BpConfig::Dim::kBoth: {
      const Tensor col_mask = bp_mask_columns(weight, config);
      const Tensor row_mask =
          transpose2d(bp_mask_columns(transpose2d(weight), config));
      return mul(col_mask, row_mask);
    }
  }
  throw CheckError("bp_mask: unknown dim");
}

namespace {

Tensor bp_mask_columns(const Tensor& weight, const BpConfig& config) {
  const auto norms = block_column_norms(weight, config.num_blocks);
  const std::int64_t cols = weight.size(1);
  Tensor mask = Tensor::ones(weight.shape());

  for (std::size_t b = 0; b < norms.size(); ++b) {
    const auto& block = norms[b];
    if (config.mode == BpConfig::Mode::kThreshold) {
      for (std::int64_t c = 0; c < cols; ++c) {
        if (block[static_cast<std::size_t>(c)] < config.threshold) {
          zero_block_column(mask, config.num_blocks,
                            static_cast<std::int64_t>(b), c);
        }
      }
    } else {
      // Percentile: prune the lowest-norm prune_fraction of columns.
      const std::int64_t pruned = static_cast<std::int64_t>(
          std::floor(config.prune_fraction * static_cast<double>(cols)));
      std::vector<std::int64_t> order(static_cast<std::size_t>(cols));
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::int64_t x, std::int64_t y) {
                         return block[static_cast<std::size_t>(x)] <
                                block[static_cast<std::size_t>(y)];
                       });
      for (std::int64_t k = 0; k < pruned; ++k) {
        zero_block_column(mask, config.num_blocks,
                          static_cast<std::int64_t>(b),
                          order[static_cast<std::size_t>(k)]);
      }
    }
  }
  return mask;
}

Tensor rbp_mask_columns(const Tensor& weight, const BpConfig& config,
                        Rng& rng) {
  const auto counts = bp_pruned_counts(weight, config);
  const std::int64_t cols = weight.size(1);
  Tensor mask = Tensor::ones(weight.shape());
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const auto victims =
        rng.sample_without_replacement(cols, counts[b]);
    for (std::int64_t c : victims) {
      zero_block_column(mask, config.num_blocks, static_cast<std::int64_t>(b),
                        c);
    }
  }
  return mask;
}

}  // namespace

Tensor rbp_mask(const Tensor& weight, const BpConfig& config, Rng& rng) {
  switch (config.dim) {
    case BpConfig::Dim::kColumns:
      return rbp_mask_columns(weight, config, rng);
    case BpConfig::Dim::kRows:
      return transpose2d(rbp_mask_columns(transpose2d(weight), config, rng));
    case BpConfig::Dim::kBoth: {
      const Tensor col_mask = rbp_mask_columns(weight, config, rng);
      const Tensor row_mask =
          transpose2d(rbp_mask_columns(transpose2d(weight), config, rng));
      return mul(col_mask, row_mask);
    }
  }
  throw CheckError("rbp_mask: unknown dim");
}

Tensor unstructured_mask(const Tensor& weight, double sparsity) {
  check(weight.dim() == 2, "unstructured_mask: need 2-D weight");
  check(sparsity >= 0.0 && sparsity <= 1.0,
        "unstructured_mask: sparsity out of range");
  const std::int64_t total = weight.numel();
  const auto pruned = static_cast<std::int64_t>(
      std::floor(sparsity * static_cast<double>(total)));
  std::vector<std::int64_t> order(static_cast<std::size_t>(total));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return std::abs(weight[a]) < std::abs(weight[b]);
                   });
  Tensor mask = Tensor::ones(weight.shape());
  for (std::int64_t k = 0; k < pruned; ++k) {
    mask[order[static_cast<std::size_t>(k)]] = 0.0F;
  }
  return mask;
}

std::vector<float> reweighting_coefficients(const Tensor& weight,
                                            std::int64_t num_blocks,
                                            float eps) {
  const auto norms = block_column_norms(weight, num_blocks);
  std::vector<float> out;
  out.reserve(norms.size() * norms.front().size());
  for (const auto& block : norms) {
    for (double n : block) {
      out.push_back(1.0F / (static_cast<float>(n) + eps));
    }
  }
  return out;
}

Var group_lasso_penalty(const Var& weight, std::int64_t num_blocks,
                        const std::vector<float>& group_weights, float eps) {
  const Tensor& w = weight.value();
  check(w.dim() == 2, "group_lasso_penalty: need 2-D weight");
  const std::int64_t rows = w.size(0);
  const std::int64_t cols = w.size(1);
  check(rows % num_blocks == 0, "group_lasso_penalty: bad block count");
  const std::int64_t block_rows = rows / num_blocks;
  const std::int64_t num_groups = num_blocks * cols;
  check(group_weights.empty() ||
            static_cast<std::int64_t>(group_weights.size()) == num_groups,
        "group_lasso_penalty: group weight arity mismatch");

  // Forward: sum_g coeff_g * ||group_g||_2  (plus eps inside the sqrt for a
  // smooth gradient at zero).
  std::vector<float> group_norms(static_cast<std::size_t>(num_groups));
  double penalty = 0.0;
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    for (std::int64_t c = 0; c < cols; ++c) {
      double sq = 0.0;
      for (std::int64_t r = b * block_rows; r < (b + 1) * block_rows; ++r) {
        sq += static_cast<double>(w[r * cols + c]) * w[r * cols + c];
      }
      const float norm = static_cast<float>(std::sqrt(sq + eps * eps));
      const std::int64_t g = b * cols + c;
      group_norms[static_cast<std::size_t>(g)] = norm;
      const float coeff =
          group_weights.empty() ? 1.0F
                                : group_weights[static_cast<std::size_t>(g)];
      penalty += static_cast<double>(coeff) * norm;
    }
  }

  const std::vector<float> coeffs = group_weights;
  const Tensor w_copy = w;
  return Var::make_op(
      Tensor::scalar(static_cast<float>(penalty)), {weight},
      [w_copy, group_norms, coeffs, num_blocks, block_rows, cols](
          const Tensor& g, std::vector<Var>& ps) {
        Tensor gw(w_copy.shape());
        for (std::int64_t b = 0; b < num_blocks; ++b) {
          for (std::int64_t c = 0; c < cols; ++c) {
            const std::int64_t grp = b * cols + c;
            const float norm = group_norms[static_cast<std::size_t>(grp)];
            const float coeff =
                coeffs.empty() ? 1.0F
                               : coeffs[static_cast<std::size_t>(grp)];
            for (std::int64_t r = b * block_rows; r < (b + 1) * block_rows;
                 ++r) {
              gw[r * cols + c] =
                  g[0] * coeff * w_copy[r * cols + c] / norm;
            }
          }
        }
        ps[0].accumulate_grad(gw);
      });
}

}  // namespace rt3
