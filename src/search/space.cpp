#include "search/space.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "pruning/pattern_prune.hpp"

namespace rt3 {

Tensor importance_from_layers(const std::vector<Linear*>& layers,
                              std::int64_t psize, Rng& rng) {
  check(!layers.empty(), "importance_from_layers: no layers");
  Tensor importance({psize, psize});
  for (const Linear* layer : layers) {
    const Tensor& w = layer->weight().value();
    if (w.size(0) % psize != 0 || w.size(1) % psize != 0) {
      continue;  // layers not tileable at this psize don't contribute
    }
    // Honour the backbone mask: importance must reflect the fixed model C.
    Tensor masked = layer->has_mask() ? mul(w, layer->mask()) : w;
    const Tensor layer_imp = pattern_importance_map(
        masked, psize,
        std::max<std::int64_t>(
            1, (w.size(0) / psize) * (w.size(1) / psize) / 2),
        rng);
    importance.add_(layer_imp);
  }
  return importance;
}

PatternSet pattern_set_from_layers(const std::vector<Linear*>& layers,
                                   std::int64_t psize, double sparsity,
                                   std::int64_t m, Rng& rng) {
  const std::int64_t kept = kept_for_sparsity(psize, sparsity);
  PatternSet set;
  set.patterns.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const Tensor imp = importance_from_layers(layers, psize, rng);
    set.patterns.push_back(Pattern::from_importance(imp, kept));
  }
  return set;
}

namespace {

// Pattern sparsity needed on top of the backbone so the COMPOSED model
// reaches `target_overall`.  Pattern assignment maximizes retained l2 on
// the backbone-masked weights, so kept pattern positions ALIGN with
// backbone-kept positions and the composed sparsity is bounded below by
// the pattern sparsity itself (composed kept = |K_backbone ∩ K_pattern| <=
// |K_pattern|).  Targeting the overall ratio directly is therefore
// conservative: the measured composed sparsity meets or exceeds it.
double pattern_sparsity_for_overall(double target_overall,
                                    double backbone_sparsity) {
  if (target_overall <= backbone_sparsity) {
    return 0.05;  // nearly-dense pattern: backbone already satisfies T
  }
  return std::clamp(target_overall, 0.05, 0.95);
}

}  // namespace

PatternSearchSpace PatternSearchSpace::build(
    const SearchSpaceConfig& config, const std::vector<VfLevel>& levels,
    const ModelSpec& spec, const LatencyModel& latency,
    const std::vector<Linear*>& backbone_layers, double backbone_sparsity) {
  check(!levels.empty(), "PatternSearchSpace: no levels");
  check(config.theta >= 1, "PatternSearchSpace: theta must be >= 1");

  PatternSearchSpace space;
  std::vector<double> grid;
  // Ring k tightens the constraint: T * (1 - k * tighten_step).
  for (std::int64_t k = 0; k < config.theta; ++k) {
    const double t =
        config.timing_constraint_ms * (1.0 - config.tighten_step *
                                                 static_cast<double>(k));
    for (const VfLevel& level : levels) {
      const double overall = latency.sparsity_for_latency(
          spec, config.exec_mode, level.freq_mhz, t);
      grid.push_back(
          pattern_sparsity_for_overall(overall, backbone_sparsity));
    }
  }
  std::sort(grid.begin(), grid.end());
  // Dedup with a tolerance: candidates within 1% sparsity are redundant.
  for (double s : grid) {
    if (space.sparsity_grid_.empty() ||
        s > space.sparsity_grid_.back() + 0.01) {
      space.sparsity_grid_.push_back(s);
    }
  }

  space.num_variants_ = config.num_variants;
  Rng rng(config.seed);
  space.variants_.resize(space.sparsity_grid_.size());
  for (std::size_t g = 0; g < space.sparsity_grid_.size(); ++g) {
    for (std::int64_t v = 0; v < config.num_variants; ++v) {
      space.variants_[g].push_back(pattern_set_from_layers(
          backbone_layers, config.psize, space.sparsity_grid_[g],
          config.patterns_per_set, rng));
    }
  }
  return space;
}

double PatternSearchSpace::sparsity_at(std::int64_t grid_index) const {
  check(grid_index >= 0 && grid_index < grid_size(),
        "PatternSearchSpace: grid index out of range");
  return sparsity_grid_[static_cast<std::size_t>(grid_index)];
}

const PatternSet& PatternSearchSpace::variant(
    std::int64_t grid_index, std::int64_t variant_index) const {
  check(grid_index >= 0 && grid_index < grid_size(),
        "PatternSearchSpace: grid index out of range");
  check(variant_index >= 0 && variant_index < num_variants_,
        "PatternSearchSpace: variant index out of range");
  return variants_[static_cast<std::size_t>(grid_index)]
                  [static_cast<std::size_t>(variant_index)];
}

std::int64_t PatternSearchSpace::heuristic_choice_for_level(
    const VfLevel& level, const ModelSpec& spec, const LatencyModel& latency,
    ExecMode mode, double timing_constraint_ms,
    double backbone_sparsity) const {
  const double overall = latency.sparsity_for_latency(
      spec, mode, level.freq_mhz, timing_constraint_ms);
  const double needed =
      pattern_sparsity_for_overall(overall, backbone_sparsity);
  // Smallest grid sparsity that still satisfies the constraint.
  for (std::int64_t g = 0; g < grid_size(); ++g) {
    if (sparsity_grid_[static_cast<std::size_t>(g)] >= needed - 1e-9) {
      return g;
    }
  }
  return grid_size() - 1;
}

}  // namespace rt3
