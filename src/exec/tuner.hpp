// Offline kernel autotuner (`rt3 tune`).
//
// For every (layer, level) of a plan cache the tuner searches the
// KernelOptions space — k_tile x unroll x threads over small ladders —
// AutoSA-style: it measures a seeded random sample of the grid, fits a
// quadratic latency model to the samples by least squares, re-measures
// the model's top predicted finalists (plus the best sampled point), and
// keeps the fastest.  Winners are serialized as a TuningRecord that
// `rt3 serve --tuning` bakes back into the PlanCache; tuning never
// changes results, only launch shapes, because every config executes the
// same per-lane ascending-k accumulation (see exec/kernels.hpp).
//
// The cost function is injectable: production measures
// MeasuredBackend::time_layer_ms medians; tests inject a deterministic
// synthetic cost, which makes the whole search — sampling, fit,
// finalists, tie-breaks — bit-reproducible from the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exec/measured_backend.hpp"
#include "exec/plan.hpp"
#include "perf/latency_model.hpp"

namespace rt3 {

/// One (layer, level)'s tuning result.
struct TuningEntry {
  std::int64_t layer = 0;
  std::int64_t level = 0;
  KernelOptions options;
  /// Fitted-model prediction for the winner (ms).
  double predicted_ms = 0.0;
  /// Winner's re-measured cost (ms) — the selection criterion.
  double measured_ms = 0.0;
};

/// A full tuning run, serializable as a small line-oriented text file.
/// Doubles are written with 17 significant digits, so
/// parse(serialize(r)) round-trips bit-exactly and re-serialization is
/// byte-identical (the CI smoke check).
struct TuningRecord {
  ExecMode mode = ExecMode::kDense;
  /// Batch size the costs were measured at.
  std::int64_t batch = 1;
  /// SIMD ISA active during tuning (informational; records tuned under a
  /// different ISA still apply, the knobs are ISA-independent).
  std::string isa = "scalar";
  std::vector<TuningEntry> entries;

  std::string serialize() const;
  static TuningRecord parse(const std::string& text);
  void save(const std::string& path) const;
  static TuningRecord load(const std::string& path);
};

struct TunerConfig {
  /// Random grid points measured to fit the latency model (clamped to the
  /// grid size).
  std::int64_t samples = 24;
  /// Top model-predicted configs re-measured before picking the winner.
  std::int64_t finalists = 4;
  /// Cost measurements per candidate; the median is used.
  std::int64_t repeats = 3;
  /// Batch size to tune at.
  std::int64_t batch = 1;
  /// Seed for candidate sampling (the only randomness in the search).
  std::uint64_t seed = 42;
};

class Autotuner {
 public:
  /// Candidate cost in ms; lower is better.
  using CostFn = std::function<double(
      std::int64_t layer, std::int64_t level, const KernelOptions& options)>;

  /// Tunes `backend`'s plans; cost = median of `repeats` wall-time
  /// measurements of each candidate (one warm-up run discarded).  The
  /// backend must outlive the tuner.
  Autotuner(TunerConfig config, MeasuredBackend& backend);

  /// Injected-cost constructor (tests, bit-determinism): searches a
  /// layers x levels space with `cost` as ground truth.
  Autotuner(TunerConfig config, ExecMode mode, std::int64_t layers,
            std::int64_t levels, CostFn cost);

  /// Runs the search over every (layer, level); deterministic given the
  /// seed and a deterministic cost function.
  TuningRecord tune();

  /// The candidate grid the search draws from (public for tests).
  static std::vector<KernelOptions> candidate_grid();

 private:
  TuningEntry tune_one(std::int64_t layer, std::int64_t level, Rng& rng);
  double median_cost(std::int64_t layer, std::int64_t level,
                     const KernelOptions& options);

  TunerConfig config_;
  ExecMode mode_ = ExecMode::kDense;
  std::int64_t layers_ = 0;
  std::int64_t levels_ = 0;
  CostFn cost_;
};

}  // namespace rt3
