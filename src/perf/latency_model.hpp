// Analytic inference-latency and reconfiguration-switch-cost models.
//
// The paper observes pure 1/f latency scaling across DVFS levels
// (Table II: 114.59 ms at F-mode -> 160.43 ms at N-mode -> 200.54 ms at
// E-mode, exactly the frequency ratios), so latency is modeled as
// cycles / frequency with cycles determined by effective (post-pruning)
// MACs, an execution-mode overhead factor, and a fixed runtime cost.
#pragma once

#include <cstdint>
#include <string>

#include "perf/model_spec.hpp"

namespace rt3 {

/// How a pruned matrix is executed — determines indexing overhead.
enum class ExecMode : std::uint8_t {
  kDense,      // no pruning: full dense GEMM
  kBlock,      // block-structured rows/cols: regular, negligible overhead
  kPattern,    // pattern sets with compiler support (PatDNN-style)
  kIrregular,  // COO-indexed irregular sparsity
};

/// Stable text name of a mode ("dense" / "block" / "pattern" /
/// "irregular") — used by the CLI and the tuning-record format.
const char* exec_mode_name(ExecMode mode);
/// Parses exec_mode_name output; throws CheckError otherwise.
ExecMode exec_mode_from_name(const std::string& name);

/// Default cycle-level overhead multipliers per execution mode.  Block
/// pruning keeps dense inner loops; pattern execution pays a small decode
/// cost; irregular sparsity pays heavily for per-element indices (the
/// paper's Challenge 1).  These seed LatencyModelConfig; a Calibrator fit
/// (src/exec/calibrator.hpp) replaces them with measured ratios.
double exec_mode_overhead(ExecMode mode);

struct LatencyModelConfig {
  /// Effective parallel MAC throughput of the target core cluster.
  double macs_per_cycle = 8.0;
  /// Cycles of fixed per-inference runtime overhead (scheduling, IO).
  double fixed_cycles = 2.0e6;
  /// Per-mode overhead multipliers (dense is the 1.0 anchor); defaults
  /// mirror exec_mode_overhead().
  double block_overhead = 1.02;
  double pattern_overhead = 1.08;
  double irregular_overhead = 1.65;

  double mode_overhead(ExecMode mode) const;
};

/// cycles -> milliseconds at a DVFS frequency.
class LatencyModel {
 public:
  LatencyModel() = default;
  explicit LatencyModel(LatencyModelConfig config);

  /// Execution cycles for one inference at the given overall weight
  /// sparsity (fraction of zero weights, 0 = dense).
  double cycles(const ModelSpec& spec, double sparsity, ExecMode mode) const;

  /// Latency in milliseconds at `freq_mhz`.
  double latency_ms(const ModelSpec& spec, double sparsity, ExecMode mode,
                    double freq_mhz) const;

  /// Sparsity needed to hit `target_ms` at `freq_mhz` (bisection; returns
  /// a value clamped to [0, 0.99]).  This drives the paper's search-space
  /// shrinking: "predict the N sparsity ratios nearest to T".
  double sparsity_for_latency(const ModelSpec& spec, ExecMode mode,
                              double freq_mhz, double target_ms) const;

  /// Calibrates macs_per_cycle so that (spec, sparsity, mode) at freq_mhz
  /// lands exactly on target_ms.  Used once against Table II's M1 anchor
  /// (114.59 ms at F-mode).
  void calibrate(const ModelSpec& spec, double sparsity, ExecMode mode,
                 double freq_mhz, double target_ms);

  const LatencyModelConfig& config() const { return config_; }

 private:
  LatencyModelConfig config_;
};

struct SwitchCostConfig {
  /// Flash/storage read bandwidth for full-model reloads (bytes/ms).
  double flash_bytes_per_ms = 2.2e3;
  /// Off-chip memory bandwidth for pattern-set swaps (bytes/ms).
  double memory_bytes_per_ms = 4.0e5;
  /// Per-tile cost of re-binding pattern assignments (ms).
  double per_tile_remap_ms = 1.6e-3;
  /// Fixed cost of rebuilding a full model after reload (ms).
  double model_rebuild_ms = 6.0e3;
};

/// Models the two reconfiguration strategies of Table III: the accuracy
/// upper-bound baseline must reload a whole model (tens of seconds); RT3
/// swaps pattern sets over the resident backbone (milliseconds).
class SwitchCostModel {
 public:
  SwitchCostModel() = default;
  explicit SwitchCostModel(SwitchCostConfig config);

  /// Full model switch: read `model_bytes` from flash + rebuild.
  double full_model_switch_ms(std::int64_t model_bytes) const;

  /// RT3 pattern-set switch: transfer the set bitmaps + per-tile
  /// assignment ids and re-bind tiles.
  double pattern_set_switch_ms(std::int64_t pattern_set_bytes,
                               std::int64_t num_tiles) const;

  const SwitchCostConfig& config() const { return config_; }

 private:
  SwitchCostConfig config_;
};

}  // namespace rt3
