// Fixed-size worker pool used by the serving subsystem for request
// producers (traffic front-ends) and any parallel bookkeeping.  Tasks are
// opaque closures; the pool makes no ordering guarantee across workers.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/lockdep.hpp"
#include "common/thread_annotations.hpp"

namespace rt3 {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).  With `pin_to_cores`, worker i
  /// is pinned to hardware core i % hardware_concurrency (Linux,
  /// best-effort) so kernel workers keep their per-core L1/L2 warm and
  /// latency samples stop paying migration jitter; elsewhere the flag is
  /// a no-op and pinned() reports false.
  explicit ThreadPool(std::int64_t num_threads, bool pin_to_cores = false);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; throws CheckError after shutdown began.  Callers
  /// must not hold mu_ (kernel task bodies that submit follow-up work
  /// would self-deadlock — see MeasuredBackend's pool interactions).
  void submit(std::function<void()> task) RT3_EXCLUDES(mu_);

  /// Blocks until the task queue is empty AND no worker is mid-task.
  /// A task that threw does not kill its worker: the first captured
  /// exception is rethrown here instead.  Once a task has thrown, workers
  /// drain the remaining queue WITHOUT running task bodies, so the error
  /// surfaces promptly instead of behind a long backlog; the rethrow
  /// clears the poison and the pool is reusable.
  void wait_idle() RT3_EXCLUDES(mu_);

  std::int64_t num_threads() const {
    return static_cast<std::int64_t>(workers_.size());
  }

  /// True when every worker was successfully pinned at construction.
  bool pinned() const { return pinned_; }

 private:
  void worker_loop() RT3_EXCLUDES(mu_);

  Mutex mu_{"ThreadPool::mu_"};
  CondVar has_work_;
  CondVar idle_;
  std::deque<std::function<void()>> tasks_ RT3_GUARDED_BY(mu_);
  /// Mutated only by the constructing thread (ctor fills, dtor joins);
  /// workers never touch the vector, so it needs no lock.
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_ RT3_GUARDED_BY(mu_);
  std::int64_t active_ RT3_GUARDED_BY(mu_) = 0;
  bool stopping_ RT3_GUARDED_BY(mu_) = false;
  bool pinned_ = false;
};

}  // namespace rt3
