// Canonical serve-session setup over the paper's {l6, l4, l3} ladder:
// bundles a Server with a LIVE ReconfigEngine (real backbone masks over
// resident Linear layers, one pattern set per level) so the CLI, the
// traffic bench, and the demo all exercise the same end-to-end path —
// battery -> governor -> drain -> pattern-set switch -> keep serving.
//
// The latency model is calibrated against the paper's Table II anchor
// (114.59 ms at F-mode, 64.26% sparsity) and per-level sparsities are
// chosen to just meet the timing constraint at each frequency, exactly
// like `rt3 simulate`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/backend.hpp"
#include "exec/measured_backend.hpp"
#include "nn/linear.hpp"
#include "pruning/model_pruner.hpp"
#include "runtime/engine.hpp"
#include "serve/governor_policy.hpp"
#include "serve/node.hpp"
#include "serve/server.hpp"

namespace rt3 {

/// Which GovernorPolicy family a session serves under.
enum class GovernorKind : std::uint8_t { kLadder, kAdaptive, kRl };

/// "ladder" / "adaptive" / "rl" (throws CheckError otherwise).
GovernorKind governor_kind_from_name(const std::string& name);
std::string governor_kind_name(GovernorKind kind);

/// The serving ladder {l6, l4, l3} (F -> N -> E), paper Table II.
const std::vector<std::int64_t>& paper_serve_ladder();

/// LatencyModel calibrated against the Table II anchor (114.59 ms at
/// F-mode, 64.26% sparsity, block execution).
LatencyModel paper_calibrated_latency();

/// Per-ladder-level sparsities that just meet `timing_constraint_ms` at
/// each frequency (never below the 64.26% backbone floor).
std::vector<double> paper_ladder_sparsities(const LatencyModel& latency,
                                            double timing_constraint_ms);

struct ServeSessionConfig {
  double battery_capacity_mj = 12'000.0;
  /// Per-level timing constraint T; also sizes the per-level sparsities.
  double timing_constraint_ms = 115.0;
  /// Inference MACs serialize on the single mobile core, so a batch of B
  /// costs ~B*T; max_batch_size 2 keeps batch latency inside a ~350 ms
  /// deadline slack while still amortizing the fixed runtime cost.
  BatchPolicy batch{2, 20.0};
  /// Batch-composition order (fifo / edf / edf-prio; see serve/policy.hpp).
  SchedulerConfig scheduler;
  /// Governor-aware batching margin (battery fraction above the next
  /// step-down threshold inside which batches shrink); 0 disables.
  double governor_margin = 0.0;
  /// Batch cap applied inside the governor margin.
  std::int64_t governor_shrink_batch = 1;
  /// false = hardware-only baseline: fixed sub-model, no engine, kBlock.
  bool software_reconfig = true;
  /// analytic = modeled batch latency (historical path); measured = the
  /// pruned layers actually run as kernels and wall time drives the clock.
  ExecBackendKind backend = ExecBackendKind::kAnalytic;
  /// Measured-backend sizing: the resident demo backbone grows to
  /// `measured_layers` square layers of side `measured_layer_dim` so
  /// kernel times are measurable.
  std::int64_t measured_layers = 3;
  std::int64_t measured_layer_dim = 64;
  std::int64_t measured_threads = 2;
  /// Drop requests whose deadline is already blown before they occupy a
  /// batch slot (ServerStats::shed).
  bool shed_expired = false;
  /// Reject ingress requests whose deadline is infeasible even for an
  /// immediate solo launch (ServerStats::rejected, `rt3 serve --admit`).
  bool admit_feasible = false;
  /// Governor family deciding levels: the static ladder (historical,
  /// bit-identical default), the adaptive-margin controller, or the
  /// learned RL governor.  kRl requires `governor_policy` (a trained
  /// artifact: `rt3 train-governor`, RlGovernorPolicy::load).
  GovernorKind governor = GovernorKind::kLadder;
  /// Explicit policy instance; overrides `governor` when set.  A
  /// NodeSession shares the ONE instance across every shard; its ladder
  /// must match the paper serve ladder's level count.
  std::shared_ptr<GovernorPolicy> governor_policy;
  std::uint64_t seed = 11;
};

/// Owns one model's full serving stack — demo backbone layers, pruner,
/// pattern sets — and the Server shard built from it via ModelDeployment
/// (the Server owns its engine and backend; the session keeps views).
class ServeSession {
 public:
  explicit ServeSession(const ServeSessionConfig& config);

  Server& server() { return *server_; }
  /// Only present with software_reconfig (throws on the hw-only baseline).
  ReconfigEngine& engine();
  bool has_engine() const { return engine_ != nullptr; }
  /// Only present with backend == kMeasured (throws otherwise).
  MeasuredBackend& measured_backend();
  bool has_measured_backend() const { return measured_ != nullptr; }
  const std::vector<double>& sparsities() const { return sparsities_; }

 private:
  // rt3-lint: allow(missing-seed) seeded from config.seed in every ctor
  Rng rng_;
  std::vector<std::unique_ptr<Linear>> owned_layers_;
  std::vector<Linear*> layers_;
  std::unique_ptr<ModelPruner> pruner_;
  std::vector<double> sparsities_;
  std::unique_ptr<Server> server_;
  /// Views into the server-owned engine/backend (nullptr when absent).
  ReconfigEngine* engine_ = nullptr;
  MeasuredBackend* measured_ = nullptr;
};

/// Canonical multi-model node over the paper ladder: `num_models`
/// resident models — independently seeded backbones and pattern sets,
/// identical timing constraint — each deployed through ModelDeployment
/// onto ONE ServeNode sharing one battery and one governor.  This is the
/// setup behind `rt3 node`, the node bench cells, and the node demo.
class NodeSession {
 public:
  /// `per_model` configures every deployment (its seed offsets by the
  /// model id, so resident backbones differ per model).
  NodeSession(const ServeSessionConfig& per_model, std::int64_t num_models);
  ~NodeSession();

  ServeNode& node() { return *node_; }
  std::int64_t num_models() const { return node_->num_models(); }

 private:
  /// One model's backbone-resident state (referenced by its shard's
  /// engine, so it must outlive the node).
  struct Resident;
  std::vector<std::unique_ptr<Resident>> residents_;
  std::unique_ptr<ServeNode> node_;
};

}  // namespace rt3
