#include "obs/timeseries.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace rt3 {

TimeSeries::TimeSeries(std::int64_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {
  t_.reserve(static_cast<std::size_t>(capacity_));
  v_.reserve(static_cast<std::size_t>(capacity_));
}

void TimeSeries::record(double t_ms, double value) {
  const std::int64_t i = offered_++;
  last_value_ = value;
  if (i % stride_ != 0) return;
  if (static_cast<std::int64_t>(t_.size()) == capacity_) {
    // Compact: keep even stored indices (offered indices 0, 2s, 4s, ...)
    // and double the stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < t_.size(); r += 2, ++w) {
      t_[w] = t_[r];
      v_[w] = v_[r];
    }
    t_.resize(w);
    v_.resize(w);
    stride_ *= 2;
    if (i % stride_ != 0) return;  // no longer on the widened stride
  }
  t_.push_back(t_ms);
  v_.push_back(value);
}

TelemetrySampler::TelemetrySampler(TelemetryConfig config)
    : config_(config) {
  if (config_.sample_every_batches < 1) config_.sample_every_batches = 1;
  if (config_.series_capacity < 2) config_.series_capacity = 2;
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0) {
    config_.ewma_alpha = 0.2;
  }
}

TimeSeries& TelemetrySampler::series_for(const std::string& name,
                                         std::int64_t lane) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple(config_.series_capacity, lane))
             .first;
  }
  return it->second.ts;
}

void TelemetrySampler::on_batch(const BatchSample& sample) {
  const double alpha = config_.ewma_alpha;
  const double n = sample.batch_size > 0
                       ? static_cast<double>(sample.batch_size)
                       : 1.0;
  const double miss_frac = static_cast<double>(sample.misses) / n;
  const double mean_latency = sample.latency_sum_ms / n;
  auto ewma_update = [alpha](std::map<std::int64_t, double>& m,
                             std::int64_t id, double x) {
    auto it = m.find(id);
    if (it == m.end()) {
      m.emplace(id, x);  // seed with the first observation (no zero bias)
    } else {
      it->second += alpha * (x - it->second);
    }
  };
  ewma_update(miss_ewma_, sample.model_id, miss_frac);
  ewma_update(latency_ewma_, sample.model_id, mean_latency);

  const std::int64_t k = batches_++;
  now_ms_ = sample.end_ms;
  if (k % config_.sample_every_batches != 0) return;

  const double t = sample.end_ms;
  const std::int64_t lane = sample.model_id + 1;
  const std::string m = "m" + std::to_string(sample.model_id);
  series_for("node.battery_fraction", 0).record(t, sample.battery_fraction);
  series_for("node.level", 0)
      .record(t, static_cast<double>(sample.level_pos));
  series_for("node.queue_depth", 0)
      .record(t, static_cast<double>(sample.node_queue_depth));
  series_for("node.unroutable", 0)
      .record(t, static_cast<double>(unroutable_));
  series_for(m + ".queue_depth", lane)
      .record(t, static_cast<double>(sample.queue_depth));
  series_for(m + ".batch_size", lane)
      .record(t, static_cast<double>(sample.batch_size));
  series_for(m + ".energy_mj", lane).record(t, sample.energy_mj);
  series_for(m + ".miss_ewma", lane).record(t, miss_ewma_[sample.model_id]);
  series_for(m + ".latency_ewma_ms", lane)
      .record(t, latency_ewma_[sample.model_id]);
  series_for(m + ".shed", lane)
      .record(t, static_cast<double>(shed_[sample.model_id]));
  series_for(m + ".rejected", lane)
      .record(t, static_cast<double>(rejected_[sample.model_id]));
}

void TelemetrySampler::count_shed(std::int64_t model_id, std::int64_t n) {
  shed_[model_id] += n;
}

void TelemetrySampler::count_reject(std::int64_t model_id, std::int64_t n) {
  rejected_[model_id] += n;
}

void TelemetrySampler::count_unroutable(std::int64_t n) {
  unroutable_ += n;
}

void TelemetrySampler::record_switch(double duration_ms) {
  series_for("node.switch_ms", 0).record(now_ms_, duration_ms);
}

void TelemetrySampler::record_swap_bytes(double bytes) {
  series_for("node.swap_bytes", 0).record(now_ms_, bytes);
}

double TelemetrySampler::miss_ewma(std::int64_t model_id) const {
  auto it = miss_ewma_.find(model_id);
  return it == miss_ewma_.end() ? 0.0 : it->second;
}

double TelemetrySampler::latency_ewma_ms(std::int64_t model_id) const {
  auto it = latency_ewma_.find(model_id);
  return it == latency_ewma_.end() ? 0.0 : it->second;
}

std::int64_t TelemetrySampler::num_points() const {
  std::int64_t total = 0;
  for (const auto& [name, entry] : series_) total += entry.ts.size();
  return total;
}

const TimeSeries* TelemetrySampler::series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second.ts;
}

void TelemetrySampler::export_counters(TraceRecorder& trace) const {
  for (const auto& [name, entry] : series_) {
    const TimeSeries& ts = entry.ts;
    for (std::int64_t i = 0; i < ts.size(); ++i) {
      TraceEvent ev(name, "telemetry",
                    ts.times()[static_cast<std::size_t>(i)], entry.lane);
      ev.ph = 'C';
      ev.arg("value", ts.values()[static_cast<std::size_t>(i)]);
      trace.record(std::move(ev));
    }
  }
}

std::string TelemetrySampler::to_json() const {
  std::string out;
  out += "{\"sample_every\": ";
  out += std::to_string(config_.sample_every_batches);
  out += ", \"capacity\": ";
  out += std::to_string(config_.series_capacity);
  out += ", \"batches\": ";
  out += std::to_string(batches_);
  out += ", \"series\": {";
  bool first = true;
  for (const auto& [name, entry] : series_) {
    if (!first) out += ", ";
    first = false;
    const TimeSeries& ts = entry.ts;
    out += "\"" + trace_json_escape(name) + "\": {\"lane\": ";
    out += std::to_string(entry.lane);
    out += ", \"stride\": ";
    out += std::to_string(ts.stride());
    out += ", \"offered\": ";
    out += std::to_string(ts.offered());
    out += ", \"t\": [";
    for (std::int64_t i = 0; i < ts.size(); ++i) {
      if (i > 0) out += ", ";
      out += trace_json_num(ts.times()[static_cast<std::size_t>(i)]);
    }
    out += "], \"v\": [";
    for (std::int64_t i = 0; i < ts.size(); ++i) {
      if (i > 0) out += ", ";
      out += trace_json_num(ts.values()[static_cast<std::size_t>(i)]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace rt3
