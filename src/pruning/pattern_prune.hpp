// Level-2 pattern pruning: importance-guided pattern-set construction
// (paper component #3) and per-weight pattern mask application, plus the
// random baseline rPP (Table IV).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sparse/pattern.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {

/// Importance map for pattern construction: samples `sample_tiles` of the
/// backbone's psize x psize tiles and point-wise accumulates |w| — the
/// paper samples n/2 of the n blocks and adds them position-wise.
Tensor pattern_importance_map(const Tensor& backbone, std::int64_t psize,
                              std::int64_t sample_tiles, Rng& rng);

/// Builds one pattern set of `m` patterns at the given sparsity, each from
/// an independent tile sample of the backbone (so members differ but share
/// the backbone's important positions).
PatternSet build_pattern_set(const Tensor& backbone, std::int64_t psize,
                             double sparsity, std::int64_t m, Rng& rng);

/// Random baseline (rPP): patterns with the same kept count but uniformly
/// random positions.
PatternSet random_pattern_set(std::int64_t psize, double sparsity,
                              std::int64_t m, Rng& rng);

/// Full binary mask for a weight matrix under a pattern set: every tile is
/// assigned the set's pattern with maximal retained l2 (paper Fig. 2 rule).
/// Weight dims must be multiples of psize.
Tensor pattern_mask_for_weight(const Tensor& weight, const PatternSet& set);

/// Number of kept positions for a pattern of side `psize` at `sparsity`
/// (rounded, clamped to [1, psize^2]).
std::int64_t kept_for_sparsity(std::int64_t psize, double sparsity);

}  // namespace rt3
