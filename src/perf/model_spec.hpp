// Paper-scale model descriptions used by the analytic performance models.
//
// Accuracy in this repo comes from reduced-scale trained models (see
// DESIGN.md substitutions); latency and energy come from these
// paper-scale layer shapes, mirroring how the paper itself predicts
// latency with a compiler-side performance model (component #4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rt3 {

/// One weight matrix participating in inference.
struct LayerSpec {
  std::string name;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  /// How many times this matrix multiplies an activation per inferred
  /// token (cross-attention in the decoder runs once per token too).
  std::int64_t uses_per_token = 1;
};

/// A full model: its weight matrices and the tokens processed per
/// inference request.
struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;
  std::int64_t tokens_per_inference = 32;

  std::int64_t total_weights() const;
  std::int64_t dense_bytes() const { return total_weights() * 4; }

  /// Dense multiply-accumulate operations for one inference.
  double dense_macs() const;

  /// Count of psize x psize tiles across all weight matrices (for pattern
  /// assignment payloads).  Layers not divisible by psize round up.
  std::int64_t num_tiles(std::int64_t psize) const;

  /// The paper's WikiText-2 Transformer: 2 encoder + 1 decoder layers,
  /// d_model 800, vocab-projection 28785 x 800 (the dimension quoted in
  /// Section III-C).
  static ModelSpec paper_transformer();

  /// The paper's DistilBERT: 6 encoder layers, H = 768, A = 12 heads,
  /// 30522-token vocabulary.
  static ModelSpec paper_distilbert();
};

}  // namespace rt3
