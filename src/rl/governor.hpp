// The paper's learned runtime governor, behind the GovernorPolicy seam.
//
// RlGovernorPolicy is a GRU policy over the serving-loop observation
// (battery fraction, queue depth, deadline pressure, miss-rate EWMA) that
// picks the ladder rung for the next batch.  It is trained offline with
// REINFORCE (`rt3 train-governor`): each episode is one full seeded
// virtual-clock serving session, the return is a battery-lifetime x
// miss-rate reward over the session's ServerStats, and the update is the
// same moving-average-baseline rule as the pattern-set RlController.
// Trained weights serialize to a TuningRecord-style text artifact
// ("rt3-governor v1") that byte-round-trips, so CI can train, save,
// reload and cmp.
//
// Serving uses the greedy argmax head (no rng draws, bit-deterministic);
// training mode samples actions from a caller-owned Rng and accumulates
// the episode's log-probability sum for the policy-gradient step.  The
// recurrent state is detached between decisions (truncated BPTT of one
// step), matching the repo's controller idiom and keeping each decision's
// graph small enough to build inside the serving loop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rl/gru.hpp"
#include "serve/governor_policy.hpp"
#include "serve/session.hpp"
#include "serve/stats.hpp"
#include "serve/traffic.hpp"
#include "tensor/optim.hpp"

namespace rt3 {

struct RlGovernorConfig {
  std::int64_t hidden_dim = 16;
  float learning_rate = 5e-3F;
  float baseline_decay = 0.7F;
  /// Queue depth is squashed to min(1, depth / queue_depth_scale).
  double queue_depth_scale = 16.0;
  /// EWMA smoothing of the per-batch miss fraction fed back into the
  /// observation vector.
  double miss_alpha = 0.3;
  /// Weight-init seed; decision order is deterministic given this seed.
  std::uint64_t seed = 11;
};

/// Session-level reward for one governor episode (higher is better).
/// Strictly decreasing in the miss rate and the drop fraction, increasing
/// in the served fraction and the session lifetime — the paper's
/// "serve well for as long as the battery lasts" objective.
struct GovernorRewardConfig {
  double serve_weight = 1.0;
  double miss_weight = 2.0;
  double drop_weight = 1.0;
  double lifetime_weight = 0.5;
  /// Lifetime credit saturates at this session length (the traffic
  /// duration, typically): surviving the whole session earns full credit.
  double reference_lifetime_ms = 60'000.0;
};

double governor_reward(const GovernorRewardConfig& config,
                       const ServerStats& stats);

class RlGovernorPolicy final : public GovernorPolicy, public Module {
 public:
  /// Observation layout: [battery_fraction, squashed queue depth,
  /// deadline_pressure, miss-rate EWMA].
  static constexpr std::int64_t kObsDim = 4;

  RlGovernorPolicy(Governor ladder, RlGovernorConfig config = {});

  std::string name() const override { return "rl"; }

  /// One decision per batch boundary: the first call after reset() or
  /// observe_batch() runs the network; until the next batch completes,
  /// repeated calls (switch re-reads, admission iterations) return the
  /// cached choice so a decision epoch is atomic.
  std::int64_t decide(const GovernorObservation& obs) override;

  void observe_batch(const BatchFeedback& feedback) override;

  /// RL switches fire exactly at the batch boundary they were decided at,
  /// so no threshold-crossing lag is attributed inside the drain.
  double drain_lag_ms(std::int64_t active_pos, double frac_before,
                      double frac_after, double lat_ms) const override;

  /// Clears episode state (recurrent state, cached decision, miss EWMA,
  /// log-prob accumulator).  Learned weights survive.
  void reset() override;

  /// Training mode: sample decisions from `rng` and accumulate log
  /// probabilities.  nullptr (the default) restores greedy serving.
  void set_sample_rng(Rng* rng) { sample_rng_ = rng; }

  /// REINFORCE step over the episode accumulated since the last reset():
  /// loss = -(reward - baseline) * log_prob_sum.  Returns the advantage.
  /// Requires at least one sampled decision this episode.
  double update(double reward);

  std::int64_t decisions_this_episode() const { return decisions_; }
  double miss_ewma() const { return miss_ewma_; }
  double baseline() const { return baseline_; }
  const RlGovernorConfig& config() const { return config_; }

  /// "rt3-governor v1" text artifact; parse(serialize()) then serialize()
  /// is byte-identical (weights print as %.17g, exact for float32).
  std::string serialize() const;
  void save(const std::string& path) const;
  static std::shared_ptr<RlGovernorPolicy> parse(const std::string& text,
                                                 Governor ladder);
  static std::shared_ptr<RlGovernorPolicy> load(const std::string& path,
                                                Governor ladder);

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;

 private:
  RlGovernorConfig config_;
  std::unique_ptr<GruCell> gru_;
  std::unique_ptr<Linear> head_;
  std::unique_ptr<Adam> optimizer_;
  Rng* sample_rng_ = nullptr;

  // Episode state (cleared by reset()).
  Var hidden_;
  Var log_prob_sum_;
  bool has_cached_ = false;
  std::int64_t cached_pos_ = 0;
  double miss_ewma_ = 0.0;
  std::int64_t decisions_ = 0;

  double baseline_ = 0.0;
  bool baseline_initialized_ = false;
};

/// Offline training setup: REINFORCE episodes over full serving sessions
/// in the seeded simulator, scenarios round-robined so the policy sees
/// steady, bursty and diurnal discharges.
struct GovernorTrainConfig {
  std::int64_t episodes = 30;
  RlGovernorConfig policy;
  GovernorRewardConfig reward;
  /// Base serving session every episode runs (battery, constraint T,
  /// batching).  Its governor fields are ignored: the trainee is wired in.
  ServeSessionConfig session;
  /// Base traffic shape; scenario and seed vary per episode.
  TrafficConfig traffic;
  /// Round-robin scenario cycle (must be non-empty).
  std::vector<TrafficScenario> scenarios = {TrafficScenario::kSteady,
                                            TrafficScenario::kBurst,
                                            TrafficScenario::kDiurnal};
  /// Episode e draws traffic from seed traffic_seed + e.
  std::uint64_t traffic_seed = 7;
  /// Action-sampling stream (independent of weight init).
  std::uint64_t sample_seed = 1234;
};

struct GovernorTrainResult {
  std::shared_ptr<RlGovernorPolicy> policy;
  /// Per-episode rewards / advantages / miss rates, in episode order.
  std::vector<double> rewards;
  std::vector<double> advantages;
  std::vector<double> miss_rates;
};

/// Runs the offline loop and returns the trained policy in greedy serving
/// mode.  Bit-deterministic from the config's seeds.
GovernorTrainResult train_governor(const GovernorTrainConfig& config);

}  // namespace rt3
