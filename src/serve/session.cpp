#include "serve/session.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "pruning/pattern_prune.hpp"

namespace rt3 {

const std::vector<std::int64_t>& paper_serve_ladder() {
  static const std::vector<std::int64_t> ladder = {5, 3, 2};  // F -> N -> E
  return ladder;
}

GovernorKind governor_kind_from_name(const std::string& name) {
  if (name == "ladder") {
    return GovernorKind::kLadder;
  }
  if (name == "adaptive") {
    return GovernorKind::kAdaptive;
  }
  if (name == "rl") {
    return GovernorKind::kRl;
  }
  throw CheckError("unknown governor kind: " + name +
                   " (expected ladder|adaptive|rl)");
}

std::string governor_kind_name(GovernorKind kind) {
  switch (kind) {
    case GovernorKind::kLadder: return "ladder";
    case GovernorKind::kAdaptive: return "adaptive";
    case GovernorKind::kRl: return "rl";
  }
  throw CheckError("governor_kind_name: bad enum value");
}

namespace {

/// The session's governor surface: the explicit policy instance when one
/// is configured, else a fresh policy of the configured kind over the
/// paper serve ladder.  kRl has no weights to invent here — it needs a
/// trained artifact.
GovernorHandle session_governor(const ServeSessionConfig& config) {
  Governor ladder = Governor::equal_tranches(paper_serve_ladder());
  if (config.governor_policy != nullptr) {
    check(config.governor_policy->num_levels() ==
              static_cast<std::int64_t>(ladder.levels().size()),
          "ServeSession: governor_policy ladder has " +
              std::to_string(config.governor_policy->num_levels()) +
              " levels, the paper serve ladder has " +
              std::to_string(ladder.levels().size()));
    return GovernorHandle(config.governor_policy);
  }
  switch (config.governor) {
    case GovernorKind::kLadder:
      return GovernorHandle(std::move(ladder));
    case GovernorKind::kAdaptive:
      return GovernorHandle(
          std::make_shared<AdaptiveMarginPolicy>(std::move(ladder)));
    case GovernorKind::kRl:
      throw CheckError(
          "ServeSession: the rl governor needs a trained policy "
          "(rt3 train-governor, then --governor-policy FILE)");
  }
  throw CheckError("ServeSession: bad governor kind");
}

}  // namespace

LatencyModel paper_calibrated_latency() {
  LatencyModel latency;
  latency.calibrate(ModelSpec::paper_transformer(), 0.6426, ExecMode::kBlock,
                    1400.0, 114.59);
  return latency;
}

std::vector<double> paper_ladder_sparsities(const LatencyModel& latency,
                                            double timing_constraint_ms) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const ModelSpec spec = ModelSpec::paper_transformer();
  std::vector<double> sparsities;
  for (std::int64_t li : paper_serve_ladder()) {
    const double tuned = latency.sparsity_for_latency(
        spec, ExecMode::kPattern, table.level(li).freq_mhz,
        timing_constraint_ms);
    sparsities.push_back(std::max(0.6426, tuned));
  }
  return sparsities;
}

ReconfigEngine& ServeSession::engine() {
  check(engine_ != nullptr,
        "ServeSession: hardware-only baseline has no ReconfigEngine");
  return *engine_;
}

MeasuredBackend& ServeSession::measured_backend() {
  check(measured_ != nullptr,
        "ServeSession: analytic session has no MeasuredBackend");
  return *measured_;
}

namespace {

/// Shared between ServeSession and NodeSession: builds one model's
/// deployment (config + analytic models + owned engine/backend) over the
/// caller-owned resident backbone.  `rng` drives weight init and pattern
/// sets, so differently-seeded callers get different resident models.
struct DeploymentParts {
  ModelDeployment deployment;
  ReconfigEngine* engine_view = nullptr;
  MeasuredBackend* measured_view = nullptr;
};

DeploymentParts make_paper_deployment(
    const ServeSessionConfig& config, Rng& rng,
    std::vector<std::unique_ptr<Linear>>& owned_layers,
    std::vector<Linear*>& layers, std::unique_ptr<ModelPruner>& pruner,
    const std::vector<double>& tuned_sparsities) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const ModelSpec spec = ModelSpec::paper_transformer();
  const LatencyModel latency = paper_calibrated_latency();
  const bool measured = config.backend == ExecBackendKind::kMeasured;

  ServerConfig scfg;
  scfg.battery_capacity_mj = config.battery_capacity_mj;
  scfg.batch = config.batch;
  scfg.scheduler = config.scheduler;
  scfg.governor_margin = config.governor_margin;
  scfg.governor_shrink_batch = config.governor_shrink_batch;
  scfg.software_reconfig = config.software_reconfig;
  scfg.shed_expired = config.shed_expired;
  scfg.admit_feasible = config.admit_feasible;
  scfg.exec_mode =
      config.software_reconfig ? ExecMode::kPattern : ExecMode::kBlock;
  const std::vector<double> served_sparsities =
      config.software_reconfig
          ? tuned_sparsities
          : std::vector<double>(paper_serve_ladder().size(), 0.6426);

  DeploymentParts parts;
  parts.deployment.config(scfg)
      .spec(spec)
      .latency(latency)
      .sparsities(served_sparsities);

  if (!config.software_reconfig && !measured) {
    return parts;  // hardware-only analytic baseline: no engine, no kernels
  }

  // Resident backbone with real masks; the analytic models carry the
  // paper-scale numbers, the engine carries the switch semantics.  The
  // measured backend needs enough MAC work per layer to time, so its
  // backbone is bigger than the 16 x 16 engine-only demo.
  const std::int64_t dim = measured ? config.measured_layer_dim : 16;
  const std::int64_t num_layers = measured ? config.measured_layers : 2;
  check(dim >= 8 && num_layers >= 1, "ServeSession: bad backbone sizing");
  for (std::int64_t i = 0; i < num_layers; ++i) {
    owned_layers.push_back(std::make_unique<Linear>(dim, dim, rng));
    layers.push_back(owned_layers.back().get());
  }
  pruner = std::make_unique<ModelPruner>(layers);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner->apply_bp(bp);
  std::vector<PatternSet> sets;
  for (double s : {0.25, 0.5, 0.75}) {  // denser set at faster level
    sets.push_back(random_pattern_set(4, s, 2, rng));
  }

  if (measured) {
    std::vector<double> freqs;
    for (std::int64_t li : paper_serve_ladder()) {
      freqs.push_back(table.level(li).freq_mhz);
    }
    MeasuredBackendConfig mcfg;
    mcfg.mode = config.software_reconfig ? ExecMode::kPattern
                                         : ExecMode::kBlock;
    mcfg.threads = config.measured_threads;
    mcfg.max_batch =
        std::max<std::int64_t>(64, config.batch.max_batch_size);
    const std::vector<PatternSet> level_sets =
        config.software_reconfig ? sets : std::vector<PatternSet>{};
    auto measured_backend = std::make_unique<MeasuredBackend>(
        mcfg, layers, pruner->backbone_masks(), level_sets,
        std::move(freqs));
    // Map a batch of 1 at the fastest level to ~80% of the timing
    // constraint, so the virtual session walks the same battery/deadline
    // regime as the calibrated analytic path.
    measured_backend->auto_scale(0.8 * config.timing_constraint_ms);
    parts.measured_view = measured_backend.get();
    parts.deployment.backend(std::move(measured_backend));
  }

  if (config.software_reconfig) {
    auto engine = std::make_unique<ReconfigEngine>(
        *pruner, std::move(sets), SwitchCostModel(), spec, 100);
    parts.engine_view = engine.get();
    parts.deployment.engine(std::move(engine));
  }
  return parts;
}

}  // namespace

ServeSession::ServeSession(const ServeSessionConfig& config)
    : rng_(config.seed) {
  sparsities_ = paper_ladder_sparsities(paper_calibrated_latency(),
                                        config.timing_constraint_ms);
  DeploymentParts parts = make_paper_deployment(
      config, rng_, owned_layers_, layers_, pruner_, sparsities_);
  server_ = std::move(parts.deployment)
                .build(VfTable::odroid_xu3_a7(), session_governor(config),
                       PowerModel());
  engine_ = parts.engine_view;
  measured_ = parts.measured_view;
}

struct NodeSession::Resident {
  // rt3-lint: allow(missing-seed) seeded by the Resident(seed) init list
  Rng rng;
  std::vector<std::unique_ptr<Linear>> owned_layers;
  std::vector<Linear*> layers;
  std::unique_ptr<ModelPruner> pruner;
  explicit Resident(std::uint64_t seed) : rng(seed) {}
};

NodeSession::NodeSession(const ServeSessionConfig& per_model,
                         std::int64_t num_models) {
  check(num_models >= 1, "NodeSession: need at least one model");
  NodeConfig ncfg;
  ncfg.battery_capacity_mj = per_model.battery_capacity_mj;
  node_ = std::make_unique<ServeNode>(ncfg, VfTable::odroid_xu3_a7(),
                                      session_governor(per_model),
                                      PowerModel());
  const std::vector<double> sparsities = paper_ladder_sparsities(
      paper_calibrated_latency(), per_model.timing_constraint_ms);
  for (std::int64_t m = 0; m < num_models; ++m) {
    ServeSessionConfig cfg = per_model;
    cfg.seed = per_model.seed + static_cast<std::uint64_t>(m);
    residents_.push_back(
        std::make_unique<Resident>(cfg.seed));
    Resident& resident = *residents_.back();
    DeploymentParts parts = make_paper_deployment(
        cfg, resident.rng, resident.owned_layers, resident.layers,
        resident.pruner, sparsities);
    node_->add_model(m, std::move(parts.deployment));
  }
}

NodeSession::~NodeSession() = default;

}  // namespace rt3
