// Multi-threaded, cache-tiled CPU kernels for the measured backend.
//
// All kernels compute out[R,N] = W[R,C] x X[C,N] and accumulate every
// output element in ascending-k order with an explicit std::fma per step.
// The naive reference below uses the exact same per-element operation
// sequence, so kernel outputs are BITWISE equal to the reference
// regardless of tiling, thread count, or the compiler's FP-contraction
// choice — sparse kernels only skip terms whose stored weight is zero,
// which under fma contributes exactly nothing for finite activations.
//
// Parallelism partitions output rows across workers (each element is
// written by exactly one thread), so results are also independent of the
// thread count.  Cache tiling blocks the k-dimension so the active slice
// of X stays resident while W rows stream.
#pragma once

#include <cstdint>

#include "exec/plan.hpp"
#include "serve/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {

struct KernelOptions {
  /// k-tile (rows of X kept hot) for the dense kernel.
  std::int64_t k_tile = 64;
  /// Minimum output rows per parallel task; below this the kernel runs
  /// serially on the calling thread.
  std::int64_t row_grain = 16;
};

/// Textbook triple loop (r, j, then k ascending), fma-accumulated: the
/// correctness reference every kernel must match bitwise.
Tensor naive_dense_matmul(const Tensor& w, const Tensor& x);

/// Dense GEMM, k-tiled, rows parallelized over `pool` (nullptr = serial).
Tensor dense_gemm(const Tensor& w, const Tensor& x, ThreadPool* pool,
                  const KernelOptions& options);

/// Kept-column GEMM over a block-pruned matrix: dense inner loops over
/// each block's kept columns (the paper's hardware-friendly layout).
Tensor block_gemm(const BlockPrunedMatrix& w, const Tensor& x,
                  ThreadPool* pool, const KernelOptions& options);

/// Pattern-masked GEMM driven by a precompiled PatternPlan: per-tile CSR
/// kept-index lists, no per-cell mask tests at execution time.
Tensor pattern_gemm(const PatternPlan& plan, const Tensor& x,
                    ThreadPool* pool, const KernelOptions& options);

/// Dispatches on the plan's ExecMode.
Tensor plan_gemm(const LayerPlan& plan, const Tensor& x, ThreadPool* pool,
                 const KernelOptions& options);

}  // namespace rt3
