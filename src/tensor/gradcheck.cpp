#include "tensor/gradcheck.hpp"

#include <cmath>

#include "common/check.hpp"

namespace rt3 {

GradCheckResult grad_check(std::vector<Var> params,
                           const std::function<Var()>& loss_fn,
                           float epsilon) {
  // Analytic pass.
  for (auto& p : params) {
    p.zero_grad();
  }
  Var loss = loss_fn();
  loss.backward();

  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const auto& p : params) {
    analytic.push_back(p.grad());
  }

  GradCheckResult result;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& w = params[pi].mutable_value();
    for (std::int64_t k = 0; k < w.numel(); ++k) {
      const float saved = w[k];
      w[k] = saved + epsilon;
      const double up = loss_fn().item();
      w[k] = saved - epsilon;
      const double down = loss_fn().item();
      w[k] = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      const double a = analytic[pi][k];
      const double abs_err = std::abs(a - numeric);
      const double rel_err =
          abs_err / std::max({std::abs(a), std::abs(numeric), 1e-8});
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      result.max_rel_err = std::max(result.max_rel_err, rel_err);
    }
  }
  return result;
}

}  // namespace rt3
