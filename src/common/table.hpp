// Plain-text table rendering used by the bench harnesses to print the
// paper's tables/figures as aligned rows (paper value next to measured
// value, so the shape comparison is visible at a glance).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rt3 {

/// Column-aligned ASCII table. Usage:
///   TablePrinter t({"Model", "Sparsity", "Latency (ms)"});
///   t.add_row({"M1", "70.80%", "93.55"});
///   std::cout << t.str();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table (header, separator, rows) with 2-space padding.
  std::string str() const;

  std::int64_t row_count() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with the given number of decimals (e.g. fmt_f(93.547, 2)
/// == "93.55").
std::string fmt_f(double v, int decimals);

/// Formats a fraction in [0,1] as a percent string ("70.80%").
std::string fmt_pct(double fraction, int decimals = 2);

/// Formats a multiplicative factor ("4.96x").
std::string fmt_x(double factor, int decimals = 2);

/// Formats a count in millions ("2.71" for 2.71e6).
std::string fmt_millions(double count, int decimals = 2);

}  // namespace rt3
