#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace rt3 {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    acc += (x - m) * (x - m);
  }
  return acc / static_cast<double>(xs.size());
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  check(x.size() == y.size(), "pearson: length mismatch");
  if (x.size() < 2) {
    return 0.0;
  }
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::vector<double> xs, double p) {
  check(p >= 0.0 && p <= 100.0, "percentile: p out of [0, 100]");
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= xs.size()) {
    return xs.back();
  }
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

std::vector<double> average_ranks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) {
      ++j;
    }
    // Average rank for the tie group [i, j], 1-based ranks.
    const double avg =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg;
    }
    i = j + 1;
  }
  return ranks;
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  check(x.size() == y.size(), "spearman: length mismatch");
  if (x.size() < 2) {
    return 0.0;
  }
  return pearson(average_ranks(x), average_ranks(y));
}

double accuracy(const std::vector<std::int64_t>& pred,
                const std::vector<std::int64_t>& truth) {
  check(pred.size() == truth.size(), "accuracy: length mismatch");
  if (pred.empty()) {
    return 0.0;
  }
  std::int64_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    hits += (pred[i] == truth[i]) ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

double f1_score(const std::vector<std::int64_t>& pred,
                const std::vector<std::int64_t>& truth) {
  check(pred.size() == truth.size(), "f1_score: length mismatch");
  std::int64_t tp = 0;
  std::int64_t fp = 0;
  std::int64_t fn = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == 1 && truth[i] == 1) {
      ++tp;
    } else if (pred[i] == 1 && truth[i] == 0) {
      ++fp;
    } else if (pred[i] == 0 && truth[i] == 1) {
      ++fn;
    }
  }
  if (tp == 0) {
    return 0.0;
  }
  const double precision =
      static_cast<double>(tp) / static_cast<double>(tp + fp);
  const double recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

double matthews_corr(const std::vector<std::int64_t>& pred,
                     const std::vector<std::int64_t>& truth) {
  check(pred.size() == truth.size(), "matthews_corr: length mismatch");
  double tp = 0;
  double tn = 0;
  double fp = 0;
  double fn = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == 1 && truth[i] == 1) {
      ++tp;
    } else if (pred[i] == 0 && truth[i] == 0) {
      ++tn;
    } else if (pred[i] == 1 && truth[i] == 0) {
      ++fp;
    } else {
      ++fn;
    }
  }
  const double denom =
      std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  if (denom == 0.0) {
    return 0.0;
  }
  return (tp * tn - fp * fn) / denom;
}

}  // namespace rt3
