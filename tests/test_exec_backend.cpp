// Correctness tests for the measured execution backend: kernels must be
// BITWISE equal to the naive dense reference (dense, block-pruned, and
// pattern-masked weights, including non-multiple-of-psize edge shapes),
// the PlanCache swap must be a cheap pointer swap, the AnalyticBackend
// must reproduce the Server's historical numbers exactly, and the
// Calibrator fit must recover known parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/wall_time.hpp"
#include "exec/analytic_backend.hpp"
#include "exec/backend.hpp"
#include "exec/calibrator.hpp"
#include "exec/kernels.hpp"
#include "exec/kernels_dispatch.hpp"
#include "exec/measured_backend.hpp"
#include "exec/plan.hpp"
#include "exec/simd.hpp"
#include "exec/tuner.hpp"
#include "nn/linear.hpp"
#include "perf/calibration.hpp"
#include "pruning/model_pruner.hpp"
#include "pruning/pattern_prune.hpp"
#include "runtime/engine.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace rt3 {
namespace {

/// Bitwise equality: every float's bit pattern matches.
void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    std::uint32_t abits = 0;
    std::uint32_t bbits = 0;
    const float av = a[i];
    const float bv = b[i];
    std::memcpy(&abits, &av, sizeof(abits));
    std::memcpy(&bbits, &bv, sizeof(bbits));
    ASSERT_EQ(abits, bbits) << "mismatch at flat index " << i << ": " << av
                            << " vs " << bv;
  }
}

KernelOptions tiny_tiles() {
  KernelOptions options;
  options.k_tile = 5;    // deliberately awkward: exercises tile remainders
  options.row_grain = 3;
  return options;
}

/// Forces the portable scalar kernel table for a scope, restoring the
/// host's detected ISA on exit.
class ScopedScalarIsa {
 public:
  ScopedScalarIsa() : prev_(active_simd_isa()) {
    set_simd_isa(SimdIsa::kScalar);
  }
  ~ScopedScalarIsa() { set_simd_isa(prev_); }

 private:
  SimdIsa prev_;
};

TEST(CompiledPattern, MatchesPatternBits) {
  Rng rng(3);
  const PatternSet set = random_pattern_set(5, 0.6, 1, rng);
  const Pattern& pat = set.patterns[0];
  const CompiledPattern cp = CompiledPattern::compile(pat);
  ASSERT_EQ(cp.row_ptr.size(), 6U);
  EXPECT_EQ(cp.row_ptr[5], static_cast<std::int32_t>(pat.count_kept()));
  for (std::int64_t r = 0; r < 5; ++r) {
    std::int32_t i = cp.row_ptr[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < 5; ++c) {
      if (pat.kept(r, c)) {
        ASSERT_LT(i, cp.row_ptr[static_cast<std::size_t>(r) + 1]);
        EXPECT_EQ(cp.cols[static_cast<std::size_t>(i)], c);
        ++i;
      }
    }
    EXPECT_EQ(i, cp.row_ptr[static_cast<std::size_t>(r) + 1]);
  }
  // kept_indices (the kernel-facing accessor compile() consumes) agrees
  // with the bit mask.
  const auto idx = pat.kept_indices();
  EXPECT_EQ(static_cast<std::int64_t>(idx.size()), pat.count_kept());
  for (std::size_t i = 1; i < idx.size(); ++i) {
    EXPECT_LT(idx[i - 1], idx[i]);
  }
}

TEST(KernelFacingAccessors, PatternMaskedMatrixExposesValuesAndSet) {
  Rng rng(41);
  const PatternSet set = random_pattern_set(4, 0.5, 2, rng);
  const Tensor dense = Tensor::randn({8, 8}, rng);
  const PatternMaskedMatrix pm = PatternMaskedMatrix::from_dense(dense, set);
  EXPECT_EQ(pm.pattern_set().psize(), 4);
  EXPECT_EQ(pm.pattern_set().patterns.size(), set.patterns.size());
  // 4 tiles x 8 kept cells per pattern at 50% sparsity on psize 4.
  EXPECT_EQ(pm.values().size(), 32U);
  EXPECT_EQ(static_cast<std::int64_t>(pm.values().size()),
            pm.to_dense().count_nonzero());
}

TEST(Kernels, DenseGemmBitwiseMatchesNaive) {
  Rng rng(7);
  const Tensor w = Tensor::randn({37, 29}, rng);
  const Tensor x = Tensor::randn({29, 11}, rng);
  const Tensor reference = naive_dense_matmul(w, x);
  ThreadPool pool(3);
  expect_bitwise_equal(dense_gemm(w, x, &pool, tiny_tiles()), reference);
  expect_bitwise_equal(dense_gemm(w, x, nullptr, tiny_tiles()), reference);
  KernelOptions wide;
  wide.k_tile = 1024;  // single k-tile path
  expect_bitwise_equal(dense_gemm(w, x, &pool, wide), reference);
}

TEST(Kernels, BlockGemmBitwiseMatchesNaive) {
  Rng rng(9);
  Tensor dense = Tensor::randn({12, 10}, rng);
  // Zero out whole columns per 4-row block, the Level-1 layout.
  for (std::int64_t b = 0; b < 3; ++b) {
    for (std::int64_t c = b; c < 10; c += 3) {
      for (std::int64_t r = b * 4; r < (b + 1) * 4; ++r) {
        dense[r * 10 + c] = 0.0F;
      }
    }
  }
  const BlockPrunedMatrix bp = BlockPrunedMatrix::from_dense(dense, 3);
  const Tensor x = Tensor::randn({10, 7}, rng);
  const Tensor reference = naive_dense_matmul(bp.to_dense(), x);
  ThreadPool pool(2);
  expect_bitwise_equal(block_gemm(bp, x, &pool, tiny_tiles()), reference);
  expect_bitwise_equal(block_gemm(bp, x, nullptr, tiny_tiles()), reference);
}

TEST(Kernels, PatternGemmBitwiseMatchesNaive) {
  Rng rng(11);
  const PatternSet set = random_pattern_set(4, 0.5, 3, rng);
  const Tensor w = Tensor::randn({16, 12}, rng);
  const PatternPlan plan = PatternPlan::build(w, set);
  const Tensor x = Tensor::randn({12, 9}, rng);
  const Tensor reference = naive_dense_matmul(plan.to_dense(), x);
  ThreadPool pool(3);
  expect_bitwise_equal(pattern_gemm(plan, x, &pool, tiny_tiles()), reference);
  expect_bitwise_equal(pattern_gemm(plan, x, nullptr, tiny_tiles()),
                       reference);
}

TEST(Kernels, PatternGemmHandlesNonMultipleOfPsizeEdges) {
  Rng rng(13);
  const PatternSet set = random_pattern_set(4, 0.4, 2, rng);
  // 10 x 13 with psize 4: ragged tiles on both edges.
  const Tensor w = Tensor::randn({10, 13}, rng);
  const PatternPlan plan = PatternPlan::build(w, set);
  EXPECT_EQ(plan.tiles_r, 3);
  EXPECT_EQ(plan.tiles_c, 4);
  // Clipped tiles carry private CSRs; every kept value is in bounds.
  const Tensor masked = plan.to_dense();
  EXPECT_EQ(masked.size(0), 10);
  EXPECT_EQ(masked.size(1), 13);
  EXPECT_GT(plan.sparsity(), 0.0);
  const Tensor x = Tensor::randn({13, 6}, rng);
  const Tensor reference = naive_dense_matmul(masked, x);
  ThreadPool pool(2);
  expect_bitwise_equal(pattern_gemm(plan, x, &pool, tiny_tiles()), reference);
}

TEST(SimdIsa, NamesRoundTripAndTopologyProbesAreSane) {
  for (SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kNeon, SimdIsa::kAvx2}) {
    EXPECT_EQ(simd_isa_from_name(simd_isa_name(isa)), isa);
  }
  EXPECT_THROW(simd_isa_from_name("avx512"), CheckError);
  EXPECT_GE(simd_isa_width(detect_simd_isa()), 1);
  EXPECT_GT(cpu_l1d_bytes(), 0);
  EXPECT_GT(cpu_l2_bytes(), 0);
  EXPECT_GE(cpu_cores(), 1);
  // Forcing scalar is always allowed; the guard restores detection.
  {
    ScopedScalarIsa guard;
    EXPECT_EQ(active_simd_isa(), SimdIsa::kScalar);
    EXPECT_EQ(kernel_table_for(active_simd_isa()).width, 1);
  }
  EXPECT_EQ(active_simd_isa(), detect_simd_isa());
  for (ExecMode mode : {ExecMode::kDense, ExecMode::kBlock,
                        ExecMode::kPattern, ExecMode::kIrregular}) {
    EXPECT_EQ(exec_mode_from_name(exec_mode_name(mode)), mode);
  }
  EXPECT_THROW(exec_mode_from_name("banded"), CheckError);
}

TEST(SimdKernels, RaggedShapesBitwiseMatchScalarAcrossUnrolls) {
  // n = 45 covers every code path at the widest unroll (8-lane x 4-chain
  // block, single-vector tail, scalar tail lanes); 19 x 23 weights keep
  // row partitioning and k-tiling ragged too.  The SIMD table must match
  // the forced-scalar table AND the naive reference bitwise, lane-wise.
  Rng rng(51);
  const Tensor w = Tensor::randn({19, 23}, rng);
  const Tensor x = Tensor::randn({23, 45}, rng);
  const Tensor reference = naive_dense_matmul(w, x);
  ThreadPool pool(3);
  for (std::int64_t unroll : {1, 2, 4}) {
    KernelOptions o = tiny_tiles();
    o.unroll = unroll;
    {
      ScopedScalarIsa guard;
      expect_bitwise_equal(dense_gemm(w, x, &pool, o), reference);
    }
    expect_bitwise_equal(dense_gemm(w, x, &pool, o), reference);
    expect_bitwise_equal(dense_gemm(w, x, nullptr, o), reference);
  }
}

TEST(SimdKernels, BlockAndPatternFamiliesMatchScalarOnRaggedShapes) {
  Rng rng(53);
  // Block family: 14 rows over 2 blocks, 45 activation columns.
  Tensor bw = Tensor::randn({14, 10}, rng);
  for (std::int64_t i = 0; i < bw.numel(); ++i) {
    if (rng.bernoulli(0.4)) {
      bw[i] = 0.0F;
    }
  }
  const BlockPrunedMatrix bp = BlockPrunedMatrix::from_dense(bw, 2);
  const Tensor bx = Tensor::randn({10, 45}, rng);
  const Tensor bref = naive_dense_matmul(bp.to_dense(), bx);
  // Pattern family: 10 x 13 with psize 4 (clipped edge tiles).
  const PatternSet set = random_pattern_set(4, 0.4, 2, rng);
  const Tensor pw = Tensor::randn({10, 13}, rng);
  const PatternPlan plan = PatternPlan::build(pw, set);
  const Tensor px = Tensor::randn({13, 45}, rng);
  const Tensor pref = naive_dense_matmul(plan.to_dense(), px);
  ThreadPool pool(2);
  for (std::int64_t unroll : {1, 2, 4}) {
    KernelOptions o = tiny_tiles();
    o.unroll = unroll;
    {
      ScopedScalarIsa guard;
      expect_bitwise_equal(block_gemm(bp, bx, &pool, o), bref);
      expect_bitwise_equal(pattern_gemm(plan, px, &pool, o), pref);
    }
    expect_bitwise_equal(block_gemm(bp, bx, &pool, o), bref);
    expect_bitwise_equal(pattern_gemm(plan, px, &pool, o), pref);
  }
}

TEST(Kernels, CooGemmBitwiseMatchesNaive) {
  Rng rng(61);
  Tensor dense = Tensor::randn({14, 11}, rng);
  for (std::int64_t i = 0; i < dense.numel(); ++i) {
    if (rng.bernoulli(0.6)) {
      dense[i] = 0.0F;
    }
  }
  const IrregularPlan plan = IrregularPlan::build(dense);
  EXPECT_EQ(plan.nnz(), dense.count_nonzero());
  EXPECT_GT(plan.sparsity(), 0.0);
  const Tensor x = Tensor::randn({11, 9}, rng);
  const Tensor reference = naive_dense_matmul(plan.to_dense(), x);
  ThreadPool pool(3);
  expect_bitwise_equal(coo_gemm(plan, x, &pool, tiny_tiles()), reference);
  expect_bitwise_equal(coo_gemm(plan, x, nullptr, tiny_tiles()), reference);
}

TEST(Kernels, OptionValidationAndKTileAutoSizing) {
  Rng rng(63);
  const Tensor w = Tensor::randn({4, 4}, rng);
  const Tensor x = Tensor::randn({4, 4}, rng);
  KernelOptions bad = tiny_tiles();
  bad.unroll = 0;
  EXPECT_THROW(dense_gemm(w, x, nullptr, bad), CheckError);
  bad = tiny_tiles();
  bad.threads = -1;
  EXPECT_THROW(dense_gemm(w, x, nullptr, bad), CheckError);
  // k_tile 0 resolves to a cache-sized tile in [16, cols]; explicit
  // values pass through untouched.
  KernelOptions auto_kt;
  auto_kt.k_tile = 0;
  const std::int64_t kt = resolve_k_tile(auto_kt, 4096, 8);
  EXPECT_GE(kt, 16);
  EXPECT_LE(kt, 4096);
  auto_kt.k_tile = 7;
  EXPECT_EQ(resolve_k_tile(auto_kt, 4096, 8), 7);
  // An options.threads cap above/below the pool size never changes bits.
  ThreadPool pool(3);
  KernelOptions capped = tiny_tiles();
  capped.threads = 2;
  expect_bitwise_equal(dense_gemm(w, x, &pool, capped),
                       naive_dense_matmul(w, x));
}

TEST(PatternPlan, AssignmentMatchesModelPrunerComposition) {
  Rng rng(17);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  for (int i = 0; i < 2; ++i) {
    owned.push_back(std::make_unique<Linear>(16, 16, rng));
    layers.push_back(owned.back().get());
  }
  ModelPruner pruner(layers);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner.apply_bp(bp);
  const PatternSet set = random_pattern_set(4, 0.5, 2, rng);
  pruner.apply_pattern_set(set);

  const PlanCache cache(ExecMode::kPattern, layers, pruner.backbone_masks(),
                        {set}, 1, 4);
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const Tensor expected =
        mul(layers[li]->weight().value(), layers[li]->mask());
    const Tensor got =
        cache.plan(static_cast<std::int64_t>(li), 0).pattern->to_dense();
    ASSERT_EQ(expected.shape(), got.shape());
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
      // == (not bit compare): masked entries are +0 in the plan but may
      // be -0 in the mask product.
      EXPECT_EQ(expected[i], got[i]) << "layer " << li << " index " << i;
    }
  }
}

TEST(PlanCache, SwapIsCheapAndTracksLevels) {
  Rng rng(19);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  owned.push_back(std::make_unique<Linear>(16, 16, rng));
  layers.push_back(owned.back().get());
  std::vector<PatternSet> sets;
  for (double s : {0.25, 0.5, 0.75}) {
    sets.push_back(random_pattern_set(4, s, 2, rng));
  }
  PlanCache cache(ExecMode::kPattern, layers, {}, sets, 3, 4);
  EXPECT_EQ(cache.num_levels(), 3);
  EXPECT_EQ(cache.num_layers(), 1);
  EXPECT_GT(cache.build_wall_ms(), 0.0);
  EXPECT_THROW(cache.active_plan(0), CheckError);  // nothing active yet

  const double swap = cache.swap_to(2);
  EXPECT_GE(swap, 0.0);  // cheapness is asserted structurally below, not
                         // by wall clock (CI schedulers jitter)
  EXPECT_EQ(cache.active_level(), 2);
  EXPECT_DOUBLE_EQ(cache.swap_to(2), 0.0);  // no-op re-activation
  // A swap reassigns pointers into the pre-built plans — same object
  // before and after re-activation, never a rebuild.
  const LayerPlan* plan2 = &cache.active_plan(0);
  cache.swap_to(0);
  cache.swap_to(2);
  EXPECT_EQ(plan2, &cache.active_plan(0));
  EXPECT_EQ(plan2, &cache.plan(0, 2));
  // Sparser set at the slower level => sparser plans.
  EXPECT_GT(cache.level_sparsity(2), cache.level_sparsity(0));
}

TEST(MeasuredBackend, AllModesBitwiseMatchDenseReference) {
  for (ExecMode mode : {ExecMode::kDense, ExecMode::kBlock,
                        ExecMode::kPattern, ExecMode::kIrregular}) {
    Rng rng(23);
    std::vector<std::unique_ptr<Linear>> owned;
    std::vector<Linear*> layers;
    // One psize-friendly layer and one ragged layer (18 % 4 != 0 rows for
    // the block fallback, 14 % 4 != 0 cols for pattern edge tiles).
    owned.push_back(std::make_unique<Linear>(24, 24, rng));
    owned.push_back(std::make_unique<Linear>(18, 14, rng));
    for (auto& l : owned) {
      layers.push_back(l.get());
    }
    ModelPruner pruner(layers);
    BpConfig bp;
    bp.num_blocks = 2;
    bp.prune_fraction = 0.25;
    pruner.apply_bp(bp);
    std::vector<PatternSet> sets;
    sets.push_back(random_pattern_set(4, 0.4, 2, rng));

    MeasuredBackendConfig cfg;
    cfg.mode = mode;
    cfg.threads = 3;
    cfg.kernel = tiny_tiles();
    // kIrregular also gets the pattern set: its plans hold the SAME
    // nonzeros as the pattern plans, executed as COO triples.
    const bool prune_to_set =
        mode == ExecMode::kPattern || mode == ExecMode::kIrregular;
    MeasuredBackend backend(
        cfg, layers, pruner.backbone_masks(),
        prune_to_set ? sets : std::vector<PatternSet>{}, {1400.0});
    backend.activate_level(0);
    for (std::int64_t li = 0; li < 2; ++li) {
      const Tensor x = Tensor::randn(
          {layers[static_cast<std::size_t>(li)]->weight().value().size(1), 5},
          rng);
      const Tensor reference = naive_dense_matmul(
          backend.plans().plan(li, 0).dense_equivalent(), x);
      expect_bitwise_equal(backend.run_layer(li, x), reference);
    }
  }
}

TEST(AnalyticBackend, AttachedBackendReproducesDefaultServerExactly) {
  const LatencyModel latency = paper_calibrated_latency();
  const std::vector<double> sparsities = paper_ladder_sparsities(latency, 115.0);
  const VfTable table = VfTable::odroid_xu3_a7();
  const auto make = [&] {
    ServerConfig cfg;
    cfg.battery_capacity_mj = 18'000.0;
    cfg.batch = BatchPolicy{4, 30.0};
    return Server(cfg, table, Governor::equal_tranches(paper_serve_ladder()),
                  PowerModel(), latency, ModelSpec::paper_transformer(),
                  sparsities);
  };
  TrafficConfig tcfg;
  tcfg.duration_ms = 30'000.0;
  tcfg.rate_rps = 6.0;
  const auto schedule = generate_traffic(tcfg);

  Server plain = make();
  const ServerStats a = plain.serve(schedule);

  std::vector<double> freqs;
  for (std::int64_t li : paper_serve_ladder()) {
    freqs.push_back(table.level(li).freq_mhz);
  }
  Server with_backend = make();
  with_backend.adopt_backend(std::make_unique<AnalyticBackend>(
      latency, ModelSpec::paper_transformer(), ExecMode::kPattern, freqs,
      sparsities));
  const ServerStats b = with_backend.serve(schedule);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_DOUBLE_EQ(a.sim_end_ms, b.sim_end_ms);
  EXPECT_DOUBLE_EQ(a.energy_used_mj, b.energy_used_mj);
  EXPECT_EQ(b.backend, "analytic");
  // Both record one (zero-cost) plan swap per level activation.
  EXPECT_EQ(a.plan_swap_ms.size(), b.plan_swap_ms.size());
  EXPECT_DOUBLE_EQ(b.plan_swap_ms_total, 0.0);
}

TEST(Calibration, FitRecoversSyntheticParameters) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModelConfig truth;
  truth.macs_per_cycle = 4.0;
  truth.fixed_cycles = 2.0e5;
  truth.block_overhead = 1.3;
  truth.pattern_overhead = 1.7;
  const double freq = 1000.0;
  std::vector<LatencyObservation> obs;
  for (ExecMode mode :
       {ExecMode::kDense, ExecMode::kBlock, ExecMode::kPattern}) {
    const double sparsity = mode == ExecMode::kDense ? 0.0 : 0.5;
    for (std::int64_t batch : {1, 2, 4, 8}) {
      LatencyObservation o;
      o.mode = mode;
      o.sparsity = sparsity;
      o.batch_size = batch;
      const double per_item = spec.dense_macs() * (1.0 - sparsity) *
                              truth.mode_overhead(mode) /
                              truth.macs_per_cycle;
      o.wall_ms = (truth.fixed_cycles +
                   static_cast<double>(batch) * per_item) /
                  (freq * 1e3);
      obs.push_back(o);
    }
  }
  const LatencyModelConfig fitted = fit_latency_config(spec, obs, freq);
  EXPECT_NEAR(fitted.macs_per_cycle, truth.macs_per_cycle,
              1e-6 * truth.macs_per_cycle);
  EXPECT_NEAR(fitted.fixed_cycles, truth.fixed_cycles,
              1e-4 * truth.fixed_cycles);
  EXPECT_NEAR(fitted.block_overhead, truth.block_overhead, 1e-6);
  EXPECT_NEAR(fitted.pattern_overhead, truth.pattern_overhead, 1e-6);
  EXPECT_LT(calibration_error(spec, obs, fitted, freq), 1e-6);
}

TEST(Calibration, FitRejectsUnderdeterminedInput) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  std::vector<LatencyObservation> obs;
  LatencyObservation o;
  o.mode = ExecMode::kDense;
  o.batch_size = 2;
  o.wall_ms = 1.0;
  obs.push_back(o);
  EXPECT_THROW(fit_latency_config(spec, obs, 1000.0), CheckError);
  obs.push_back(o);  // same batch size twice: still singular
  EXPECT_THROW(fit_latency_config(spec, obs, 1000.0), CheckError);
}

TEST(Calibrator, FitsMeasuredKernelsHonestly) {
  Rng rng(29);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  for (int i = 0; i < 2; ++i) {
    owned.push_back(std::make_unique<Linear>(48, 48, rng));
    layers.push_back(owned.back().get());
  }
  ModelPruner pruner(layers);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.3;
  pruner.apply_bp(bp);
  std::vector<PatternSet> sets;
  sets.push_back(random_pattern_set(4, 0.5, 2, rng));

  CalibratorConfig ccfg;
  ccfg.batch_sizes = {1, 4, 8};
  ccfg.repeats = 3;
  const Calibrator calibrator(ccfg);
  MeasuredBackendConfig base;
  base.threads = 2;
  const CalibrationResult result =
      calibrator.run(base, layers, pruner.backbone_masks(), sets);

  EXPECT_EQ(result.observations.size(), 12U);  // 4 modes x 3 batch sizes
  EXPECT_GT(result.fitted.macs_per_cycle, 0.0);
  EXPECT_GE(result.fitted.fixed_cycles, 0.0);
  EXPECT_GT(result.fitted.block_overhead, 0.0);
  EXPECT_GT(result.fitted.pattern_overhead, 0.0);
  EXPECT_GT(result.fitted.irregular_overhead, 0.0);
  EXPECT_TRUE(std::isfinite(result.mean_abs_rel_error));
  // Host timing is noisy (CI runners share cores), but the fitted model
  // must stay in the ballpark of its own observations.
  EXPECT_LT(result.mean_abs_rel_error, 2.0);
}

TEST(MeasuredBackend, ServeSessionEndToEnd) {
  ServeSessionConfig scfg;
  scfg.backend = ExecBackendKind::kMeasured;
  scfg.battery_capacity_mj = 9'000.0;
  scfg.measured_layer_dim = 48;
  scfg.measured_layers = 2;
  ServeSession session(scfg);
  ASSERT_TRUE(session.has_measured_backend());
  ASSERT_TRUE(session.has_engine());

  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.duration_ms = 30'000.0;
  tcfg.rate_rps = 3.0;
  tcfg.deadline_slack_ms = 400.0;
  const auto schedule = generate_traffic(tcfg);
  const ServerStats stats = session.server().serve(schedule);

  EXPECT_EQ(stats.backend, "measured");
  EXPECT_GT(stats.completed, 0);
  EXPECT_EQ(stats.completed + stats.dropped + stats.shed, stats.submitted);
  // Kernel-measured latency: real wall time accumulated inside kernels.
  EXPECT_GT(stats.kernel_wall_ms_total, 0.0);
  // One plan swap per level activation (initial + each switch).
  EXPECT_EQ(static_cast<std::int64_t>(stats.plan_swap_ms.size()),
            stats.switches + 1);
  for (double ms : stats.plan_swap_ms) {
    EXPECT_GE(ms, 0.0);
  }
  // The backend's own kernel-time ledger is consistent with the stats.
  EXPECT_GE(session.measured_backend().total_kernel_wall_ms(),
            stats.kernel_wall_ms_total);
}

TEST(ReconfigEngine, PlanSwapHookRunsInsideSwitchAndIsReported) {
  // Engine-level users without a Server wire the PlanCache through the
  // plan-swap hook: the swap runs inside switch_to and its wall time
  // lands in the SwitchReport.
  Rng rng(37);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  owned.push_back(std::make_unique<Linear>(16, 16, rng));
  layers.push_back(owned.back().get());
  ModelPruner pruner(layers);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner.apply_bp(bp);
  std::vector<PatternSet> sets;
  for (double s : {0.25, 0.5, 0.75}) {
    sets.push_back(random_pattern_set(4, s, 2, rng));
  }
  PlanCache cache(ExecMode::kPattern, layers, pruner.backbone_masks(), sets,
                  3, 4);
  ReconfigEngine engine(pruner, sets, SwitchCostModel(),
                        ModelSpec::paper_transformer(), 100);
  std::vector<std::int64_t> hook_levels;
  engine.set_plan_swap_hook([&](std::int64_t level) {
    hook_levels.push_back(level);
    return cache.swap_to(level);
  });

  const SwitchReport first = engine.switch_to(1);
  EXPECT_EQ(cache.active_level(), 1);
  EXPECT_GE(first.plan_swap_wall_ms, 0.0);
  ASSERT_EQ(hook_levels.size(), 1U);
  EXPECT_EQ(hook_levels[0], 1);

  const SwitchReport noop = engine.switch_to(1);  // already active
  EXPECT_DOUBLE_EQ(noop.plan_swap_wall_ms, 0.0);
  EXPECT_EQ(hook_levels.size(), 1U);  // hook only fires on real switches

  engine.set_plan_swap_hook(nullptr);
  const SwitchReport unhooked = engine.switch_to(2);
  EXPECT_DOUBLE_EQ(unhooked.plan_swap_wall_ms, 0.0);
  EXPECT_EQ(cache.active_level(), 1);  // cleared hook no longer swaps
}

TEST(MeasuredBackend, RejectsNonPositiveThreads) {
  Rng rng(67);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  owned.push_back(std::make_unique<Linear>(8, 8, rng));
  layers.push_back(owned.back().get());
  MeasuredBackendConfig cfg;
  cfg.mode = ExecMode::kDense;
  for (std::int64_t threads : {std::int64_t{0}, std::int64_t{-3}}) {
    cfg.threads = threads;
    EXPECT_THROW(MeasuredBackend(cfg, layers, {}, {}, {1000.0}),
                 CheckError);
  }
}

TEST(ThreadPool, PinnedPoolMatchesFloatingBitwiseWithBoundedJitter) {
  ThreadPool floating(2);
  EXPECT_FALSE(floating.pinned());  // not requested
  ThreadPool pinned(2, /*pin_to_cores=*/true);
#if defined(__linux__)
  EXPECT_TRUE(pinned.pinned());
#endif
  Rng rng(71);
  const Tensor w = Tensor::randn({32, 32}, rng);
  const Tensor x = Tensor::randn({32, 16}, rng);
  const Tensor reference = naive_dense_matmul(w, x);
  // Pinning changes where work runs, never what it computes.
  expect_bitwise_equal(dense_gemm(w, x, &pinned, tiny_tiles()), reference);
  expect_bitwise_equal(dense_gemm(w, x, &floating, tiny_tiles()), reference);
  // Loose jitter sanity on the pinned pool: across repeats the p90 stays
  // within a very generous multiple of the median.  The bound tolerates
  // 1-core CI runners and sanitizer slowdowns; it exists to catch a
  // pinning implementation that serializes or livelocks workers, not to
  // benchmark.
  std::vector<double> walls;
  for (int rep = 0; rep < 20; ++rep) {
    const auto t0 = wall_now();
    const Tensor out = dense_gemm(w, x, &pinned, tiny_tiles());
    walls.push_back(wall_ms_since(t0) +
                    static_cast<double>(out[0] != out[0]));  // keep out live
  }
  std::sort(walls.begin(), walls.end());
  const double median = std::max(walls[walls.size() / 2], 1e-6);
  const double p90 = walls[(walls.size() * 9) / 10];
  EXPECT_LT(p90, median * 200.0);
}

TEST(Autotuner, BitDeterministicForFixedSeedWithInjectedCost) {
  // Injected deterministic cost: a smooth bowl over the knob space whose
  // location depends on (layer, level).  With it, the whole search —
  // seeded sampling, least-squares fit, finalist re-measures, tie-breaks
  // — must reproduce byte-identical records for the same seed.
  const Autotuner::CostFn cost = [](std::int64_t layer, std::int64_t level,
                                    const KernelOptions& o) {
    const double kt =
        std::log2(static_cast<double>(o.k_tile == 0 ? 64 : o.k_tile));
    const double t =
        static_cast<double>(o.threads == 0 ? 4 : o.threads);
    return 1.0 + 0.05 * static_cast<double>(layer + level) +
           std::abs(kt - 5.0) +
           0.3 * std::abs(static_cast<double>(o.unroll) - 2.0) +
           0.2 * std::abs(t - 2.0);
  };
  TunerConfig cfg;
  cfg.samples = 12;
  cfg.finalists = 3;
  cfg.repeats = 2;
  cfg.seed = 77;
  Autotuner a(cfg, ExecMode::kPattern, 2, 3, cost);
  Autotuner b(cfg, ExecMode::kPattern, 2, 3, cost);
  const TuningRecord ra = a.tune();
  const TuningRecord rb = b.tune();
  EXPECT_EQ(ra.serialize(), rb.serialize());
  ASSERT_EQ(ra.entries.size(), 6U);  // 2 layers x 3 levels
  for (const TuningEntry& e : ra.entries) {
    // The winner's recorded cost is its injected cost (median of a
    // deterministic function is the function).
    EXPECT_DOUBLE_EQ(e.measured_ms, cost(e.layer, e.level, e.options));
  }
  // Text round-trip is bit-exact, so re-serialization is byte-identical.
  EXPECT_EQ(TuningRecord::parse(ra.serialize()).serialize(),
            ra.serialize());
  EXPECT_THROW(TuningRecord::parse("not a tuning file"), CheckError);
}

TEST(PlanCache, ApplyTuningInstallsPerPlanOptions) {
  Rng rng(73);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  owned.push_back(std::make_unique<Linear>(16, 16, rng));
  layers.push_back(owned.back().get());
  std::vector<PatternSet> sets;
  sets.push_back(random_pattern_set(4, 0.25, 2, rng));
  sets.push_back(random_pattern_set(4, 0.5, 2, rng));
  PlanCache cache(ExecMode::kPattern, layers, {}, sets, 2, 4);
  ASSERT_FALSE(cache.plan(0, 0).tuned.has_value());

  TuningRecord record;
  record.mode = ExecMode::kPattern;
  TuningEntry e;
  e.layer = 0;
  e.level = 1;
  e.options.k_tile = 32;
  e.options.unroll = 4;
  e.options.threads = 2;
  record.entries.push_back(e);
  TuningEntry oob = e;  // out-of-range entries are skipped, not fatal
  oob.layer = 9;
  record.entries.push_back(oob);
  EXPECT_EQ(cache.apply_tuning(record), 1);
  ASSERT_TRUE(cache.plan(0, 1).tuned.has_value());
  EXPECT_EQ(cache.plan(0, 1).tuned->k_tile, 32);
  EXPECT_EQ(cache.plan(0, 1).tuned->unroll, 4);
  EXPECT_EQ(cache.plan(0, 1).tuned->threads, 2);
  EXPECT_FALSE(cache.plan(0, 0).tuned.has_value());

  // A record for another kernel family is a mix-up, not data.
  record.mode = ExecMode::kDense;
  EXPECT_THROW(cache.apply_tuning(record), CheckError);
  // Invalid options are rejected by set_tuned's validation.
  KernelOptions bad;
  bad.unroll = 0;
  EXPECT_THROW(cache.set_tuned(0, 0, bad), CheckError);
}

TEST(ExecBackendNames, RoundTrip) {
  EXPECT_EQ(exec_backend_from_name("analytic"), ExecBackendKind::kAnalytic);
  EXPECT_EQ(exec_backend_from_name("measured"), ExecBackendKind::kMeasured);
  EXPECT_EQ(exec_backend_name(ExecBackendKind::kMeasured),
            std::string("measured"));
  EXPECT_THROW(exec_backend_from_name("quantum"), CheckError);
}

}  // namespace
}  // namespace rt3
