// Deterministic metrics registry: counters, gauges, and fixed-bucket
// log-scale histograms with per-model / per-level labels.
//
// The registry is the queryable store behind a serve session's counting:
// the serving loops accumulate into the ServerStats working view on the
// hot path (zero added lookups), and ServerStats::publish mirrors every
// countable into the registry at session end under stable labeled names
// (serve.completed{model="1",...}) — so the existing stats JSON stays
// bitwise-identical while the same numbers become scrapeable, and the
// two surfaces can never disagree (one is a view of the other).
//
// Everything here is deterministic by construction: counters are exact
// integers, histograms use FIXED power-of-two bucket edges (no adaptive
// resizing, no sampling), and export walks a std::map, so two identical
// sessions render identical JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rt3 {

/// Sorted (key, value) label pairs; rendered canonically as
/// `{key="value",...}` in metric identity and JSON.
class MetricLabels {
 public:
  MetricLabels() = default;
  MetricLabels(
      std::initializer_list<std::pair<std::string, std::string>> kv);

  MetricLabels& add(const std::string& key, const std::string& value);
  MetricLabels& add(const std::string& key, std::int64_t value);

  /// Canonical suffix: "" when empty, else `{k="v",...}` sorted by key.
  /// Values are escaped Prometheus-style (`\\`, `\"`, `\n`), so the
  /// suffix is unambiguous to parse and renders verbatim in both the
  /// JSON and text-exposition exports.
  std::string suffix() const;
  bool empty() const { return kv_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Monotonically increasing integer count.
class Counter {
 public:
  void inc(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-written double value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket log2-scale histogram: bucket i counts observations in
/// [lo * 2^i, lo * 2^(i+1)), plus an underflow bucket below `lo` and an
/// overflow bucket at the top.  Edges are fixed at construction, so two
/// runs observing the same values produce identical bucket vectors.
class Histogram {
 public:
  /// Default covers [0.5 ms, ~4.7 h) in 25 doubling buckets.
  explicit Histogram(double lo = 0.5, std::int64_t num_buckets = 25);

  void observe(double x);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double lo() const { return lo_; }
  double mean() const;
  /// Inclusive lower edge of bucket i (0 = underflow, so edge 0 is 0).
  double bucket_lo(std::int64_t i) const;
  /// Bucket counts: [underflow, b0, ..., b(n-1), overflow].
  const std::vector<std::int64_t>& buckets() const { return buckets_; }

 private:
  double lo_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

/// Name -> metric store with canonical (sorted) iteration and JSON dump.
/// Returned references stay valid for the registry's lifetime (node-based
/// map storage), so hot loops hoist them once and bump without lookups.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name,
                   const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const MetricLabels& labels = {});
  Histogram& histogram(const std::string& name,
                       const MetricLabels& labels = {}, double lo = 0.5,
                       std::int64_t num_buckets = 25);

  /// Counter value by full name+labels (0 when never registered) — the
  /// snapshot read used by stats views and tests.
  std::int64_t counter_value(const std::string& name,
                             const MetricLabels& labels = {}) const;

  std::int64_t size() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// in canonical sorted order.
  std::string to_json() const;

  /// Prometheus text exposition format (version 0.0.4): one `# TYPE`
  /// line per metric family, names sanitized to [a-zA-Z0-9_:], label
  /// values escaped per the exposition rules, histograms rendered as
  /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.  (One
  /// semantic nuance: rt3 buckets are lower-inclusive, Prometheus `le`
  /// is upper-inclusive, so a value exactly on an edge reports in the
  /// next bucket up.)
  std::string to_prometheus() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rt3
