#include "serve/batcher.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace rt3 {

Batcher::Batcher(BatchPolicy policy, SchedulerConfig scheduler)
    : policy_(policy), cap_(policy.max_batch_size), pending_(scheduler) {
  check(policy_.max_batch_size >= 1, "Batcher: max_batch_size must be >= 1");
  check(policy_.max_wait_ms >= 0.0, "Batcher: negative max_wait_ms");
}

void Batcher::push(const Request& r) {
  check(pending_.empty() || last_arrival_ms_ <= r.arrival_ms,
        "Batcher: requests must arrive in timestamp order");
  last_arrival_ms_ = r.arrival_ms;
  pending_.push(r);
  if (trace_ != nullptr) {
    TraceEvent ev("enqueue", "batcher", trace_->now_ms(), trace_lane_);
    ev.id = r.id;
    ev.arg("pending", pending());
    trace_->record(std::move(ev));
  }
}

bool Batcher::ready(double now_ms) const {
  if (pending_.empty()) {
    return false;
  }
  if (pending_.size() >= cap_) {
    return true;
  }
  return now_ms >= release_at_ms();
}

double Batcher::release_at_ms() const {
  if (pending_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return pending_.min_arrival_ms() + policy_.max_wait_ms;
}

std::vector<Request> Batcher::shed_expired(double now_ms) {
  std::vector<Request> shed = pending_.extract_expired(now_ms);
  if (trace_ != nullptr) {
    for (const Request& r : shed) {
      TraceEvent ev("shed", "batcher", now_ms, trace_lane_);
      ev.id = r.id;
      ev.arg("deadline_ms", r.deadline_ms);
      trace_->record(std::move(ev));
    }
  }
  return shed;
}

void Batcher::set_trace(TraceRecorder* trace, std::int64_t lane) {
  trace_ = trace;
  trace_lane_ = lane;
}

void Batcher::set_batch_cap(std::int64_t cap) {
  cap_ = std::clamp<std::int64_t>(cap, 1, policy_.max_batch_size);
}

std::vector<Request> Batcher::pop_batch(double now_ms, bool force) {
  check(force || ready(now_ms), "Batcher: pop_batch before ready");
  std::vector<Request> batch;
  const auto take =
      static_cast<std::size_t>(std::min<std::int64_t>(cap_, pending()));
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(pending_.pop());
  }
  if (trace_ != nullptr && !batch.empty()) {
    TraceEvent ev("batch.form", "batcher", now_ms, trace_lane_);
    ev.arg("size", static_cast<std::int64_t>(batch.size()))
        .arg("left_pending", pending());
    trace_->record(std::move(ev));
  }
  return batch;
}

}  // namespace rt3
